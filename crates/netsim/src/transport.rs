//! A reliable transport with pluggable congestion control.
//!
//! This is the "existing TCP sender implementation" of §4.1: it numbers
//! segments, tracks the cumulative-ACK frontier, detects losses via three
//! duplicate ACKs and via a retransmission timeout, estimates RTT/RTO per
//! RFC 6298, and asks its [`CongestionControl`] object for the window and
//! pacing that gate transmission. Every scheme in the repository — NewReno,
//! Vegas, Cubic, Compound, DCTCP, XCP, and RemyCC — runs on top of this
//! same recovery machinery, exactly as the paper runs RemyCCs inside an
//! unmodified TCP sender.
//!
//! ## SACK-equivalent recovery
//!
//! The paper's baselines are the Linux implementations ported to ns-2,
//! which recover with SACK. We get equivalent information without
//! modelling SACK blocks: every ACK in the simulator identifies the
//! specific packet that triggered it (`ack.seq`), so the sender maintains
//! a *scoreboard* of delivered-above-frontier sequences. During fast
//! recovery it retransmits every hole while the RFC 6675-style pipe
//! estimate (`outstanding − sacked + retransmitted`) is below the window —
//! recovering a whole loss burst in about one RTT instead of one hole per
//! RTT. A retransmission timeout falls back to go-back-N, skipping
//! sequences the scoreboard knows were delivered.

use crate::cc::{AckInfo, CongestionControl, LossEvent};
use crate::packet::Ack;
use crate::time::Ns;
use std::collections::BTreeSet;

/// Minimum retransmission timeout (RFC 6298 recommends 1 s; modern stacks
/// and simulators use 200 ms, which suits the paper's 100–200 ms RTTs).
pub const MIN_RTO: Ns = Ns(200_000_000);
/// Maximum retransmission timeout.
pub const MAX_RTO: Ns = Ns(60_000_000_000);
/// Duplicate-ACK threshold for fast retransmit.
pub const DUPACK_THRESHOLD: u32 = 3;

/// What the transport wants to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendPoll {
    /// Transmit this sequence number now.
    Send {
        /// Sequence number to transmit.
        seq: u64,
        /// True when the receiver may already have seen this sequence.
        retransmit: bool,
    },
    /// Could transmit, but the pacer forbids it until the given time.
    Paced {
        /// Earliest allowed transmission time.
        until: Ns,
    },
    /// Nothing to send (window full, or no data available).
    Idle,
}

/// Summary of one processed ACK.
#[derive(Clone, Copy, Debug, Default)]
pub struct AckOutcome {
    /// Packets newly acknowledged (0 for a duplicate ACK).
    pub newly_acked: u64,
    /// A fast retransmit was triggered by this ACK.
    pub fast_retransmit: bool,
    /// The RTT sample extracted from the ACK.
    pub rtt_sample: Ns,
}

/// Reliable sender state for one flow.
pub struct Transport {
    cc: Box<dyn CongestionControl>,

    // --- sequence space ---
    /// Next new sequence number to inject.
    next_seq: u64,
    /// Lowest unacknowledged sequence number.
    snd_una: u64,
    /// Sequences above `snd_una` the receiver is known to have (the
    /// SACK-equivalent scoreboard).
    scoreboard: BTreeSet<u64>,
    /// Holes retransmitted in the current recovery episode and not yet
    /// known delivered.
    rtx_sent: BTreeSet<u64>,
    /// After an RTO the pipe is rewound to `snd_una`; sequences below this
    /// watermark were already injected once, so resending them is
    /// retransmission work that needs no fresh traffic budget.
    rewound_through: u64,

    // --- loss detection ---
    dup_acks: u32,
    in_recovery: bool,
    /// Recovery ends when `snd_una` passes this (NewReno "recover").
    recover: u64,
    /// Monotone cursor for hole scanning within [snd_una, recover).
    hole_cursor: u64,
    /// Proportional-rate-reduction-style send quota: transmissions during
    /// fast recovery are clocked by returning ACKs (one credit per ACK)
    /// instead of bursting the whole window's worth of holes at once.
    recovery_quota: f64,

    // --- RTT estimation / RTO (RFC 6298) ---
    srtt: Option<Ns>,
    rttvar: Ns,
    rto: Ns,
    min_rtt: Ns,
    /// Armed RTO deadline; `None` when nothing is outstanding.
    rto_deadline: Option<Ns>,
    /// Generation counter: stale scheduled timers are ignored.
    rto_generation: u64,

    // --- pacing ---
    last_send: Option<Ns>,

    // --- counters (reports/tests) ---
    /// Lifetime send/ack/loss counters.
    pub stats: TransportStats,
}

/// Lifetime counters for one transport.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransportStats {
    /// Data packets handed to the network (including retransmits).
    pub sent: u64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// Fast-retransmit episodes.
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// ACKs processed.
    pub acks: u64,
}

impl Transport {
    /// Wrap a congestion-control instance.
    pub fn new(cc: Box<dyn CongestionControl>) -> Transport {
        Transport {
            cc,
            next_seq: 0,
            snd_una: 0,
            scoreboard: BTreeSet::new(),
            rtx_sent: BTreeSet::new(),
            rewound_through: 0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            hole_cursor: 0,
            recovery_quota: 0.0,
            srtt: None,
            rttvar: Ns::ZERO,
            rto: Ns::SECOND,
            min_rtt: Ns::MAX,
            rto_deadline: None,
            rto_generation: 0,
            last_send: None,
            stats: TransportStats::default(),
        }
    }

    /// Begin a fresh connection (a new "on" period). Sequence numbering
    /// continues — the receiver's cumulative state stays valid — but RTT
    /// estimators, recovery state, and the congestion controller restart,
    /// mimicking TCP's per-connection slow start (§4.1).
    pub fn start_connection(&mut self, now: Ns) {
        self.dup_acks = 0;
        self.in_recovery = false;
        self.rtx_sent.clear();
        self.srtt = None;
        self.rttvar = Ns::ZERO;
        self.rto = Ns::SECOND;
        self.min_rtt = Ns::MAX;
        self.last_send = None;
        self.cc.on_flow_start(now);
    }

    /// Access the congestion controller (reports, tests).
    pub fn cc(&self) -> &dyn CongestionControl {
        &*self.cc
    }

    /// Mutable access to the congestion controller.
    pub fn cc_mut(&mut self) -> &mut dyn CongestionControl {
        &mut *self.cc
    }

    /// Consume the transport, returning the congestion controller (used by
    /// Remy's optimizer to collect whisker-usage statistics post-run).
    pub fn into_cc(self) -> Box<dyn CongestionControl> {
        self.cc
    }

    /// RFC 6675-style pipe estimate: outstanding, minus packets the
    /// scoreboard knows were delivered, plus outstanding retransmissions.
    pub fn in_flight(&self) -> u64 {
        let base = self.next_seq - self.snd_una;
        let sacked = self.scoreboard.len() as u64;
        base.saturating_sub(sacked) + self.rtx_sent.len() as u64
    }

    /// Lowest unacknowledged sequence.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next new sequence number.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// True when every injected packet has been cumulatively acknowledged.
    pub fn all_acked(&self) -> bool {
        self.snd_una == self.next_seq
    }

    /// Current minimum RTT estimate ([`Ns::MAX`] before the first sample).
    pub fn min_rtt(&self) -> Ns {
        self.min_rtt
    }

    /// The armed RTO deadline and its generation, for the event loop.
    pub fn rto_deadline(&self) -> Option<(Ns, u64)> {
        self.rto_deadline.map(|d| (d, self.rto_generation))
    }

    fn arm_rto(&mut self, now: Ns) {
        self.rto_deadline = Some(now + self.rto);
        self.rto_generation += 1;
    }

    fn disarm_rto(&mut self) {
        self.rto_deadline = None;
        self.rto_generation += 1;
    }

    /// The next hole to retransmit during fast recovery, if any.
    fn next_hole(&mut self) -> Option<u64> {
        if !self.in_recovery {
            return None;
        }
        let mut s = self.hole_cursor.max(self.snd_una);
        while s < self.recover && s < self.next_seq {
            if !self.scoreboard.contains(&s) && !self.rtx_sent.contains(&s) {
                self.hole_cursor = s;
                return Some(s);
            }
            s += 1;
        }
        self.hole_cursor = s;
        None
    }

    /// Decide what to transmit at `now`. `may_inject_new` is the traffic
    /// model's permission to create brand-new data.
    pub fn poll_send(&mut self, now: Ns, may_inject_new: bool) -> SendPoll {
        let window = self.cc.cwnd();
        let pipe = self.in_flight() as f64;
        // During fast recovery every transmission additionally needs an
        // ACK-clock credit, which prevents hole-retransmission bursts from
        // re-overflowing the bottleneck queue.
        let window_open = pipe < window && (!self.in_recovery || self.recovery_quota >= 1.0);

        // Fast-recovery retransmissions take priority over new data.
        let hole = if window_open { self.next_hole() } else { None };

        // Post-timeout go-back-N resends: skip sequences the receiver is
        // known to have, then resend the rest without fresh traffic budget.
        if hole.is_none() {
            while self.next_seq < self.rewound_through && self.scoreboard.contains(&self.next_seq) {
                self.next_seq += 1;
            }
        }
        let rewind_pending = self.next_seq < self.rewound_through;

        let work = match hole {
            Some(h) => Some((h, true)),
            None if window_open && (rewind_pending || may_inject_new) => {
                Some((self.next_seq, rewind_pending))
            }
            None => None,
        };
        let Some((seq, retransmit)) = work else {
            return SendPoll::Idle;
        };
        // Pacing applies to every transmission, retransmits included (the
        // RemyCC action's `r` is "a lower bound on the time between
        // successive sends", §4.2).
        let gap = self.cc.pacing();
        if let Some(last) = self.last_send {
            if !gap.is_zero() && now < last + gap {
                return SendPoll::Paced { until: last + gap };
            }
        }
        SendPoll::Send { seq, retransmit }
    }

    /// Record that the packet returned by [`Transport::poll_send`] was
    /// handed to the network.
    pub fn on_sent(&mut self, now: Ns, seq: u64, retransmit: bool) {
        self.stats.sent += 1;
        if retransmit {
            self.stats.retransmits += 1;
        }
        if seq == self.next_seq {
            // New data or a go-back-N resend.
            self.next_seq += 1;
        } else {
            // A fast-recovery hole retransmission.
            debug_assert!(seq >= self.snd_una && seq < self.next_seq);
            self.rtx_sent.insert(seq);
        }
        if self.in_recovery {
            self.recovery_quota = (self.recovery_quota - 1.0).max(0.0);
        }
        self.last_send = Some(now);
        self.cc.on_packet_sent(now, seq, self.in_flight());
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
    }

    fn update_rtt(&mut self, sample: Ns) {
        self.min_rtt = self.min_rtt.min(sample);
        let srtt = match self.srtt {
            None => {
                self.rttvar = Ns(sample.0 / 2);
                sample
            }
            Some(srtt) => {
                let err = if srtt >= sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                self.rttvar = Ns((3 * self.rttvar.0 + err.0) / 4);
                Ns((7 * srtt.0 + sample.0) / 8)
            }
        };
        self.srtt = Some(srtt);
        self.rto = (srtt + Ns(4 * self.rttvar.0)).max(MIN_RTO).min(MAX_RTO);
    }

    fn prune_below_frontier(&mut self) {
        let una = self.snd_una;
        self.scoreboard = self.scoreboard.split_off(&una);
        self.rtx_sent = self.rtx_sent.split_off(&una);
    }

    /// Process an acknowledgment.
    pub fn on_ack(&mut self, now: Ns, ack: &Ack) -> AckOutcome {
        self.stats.acks += 1;
        let rtt_sample = now.saturating_sub(ack.echo_ts);
        self.update_rtt(rtt_sample);

        let mut out = AckOutcome {
            rtt_sample,
            ..AckOutcome::default()
        };

        // Scoreboard: this specific packet reached the receiver.
        if ack.seq >= self.snd_una && ack.seq >= ack.cum_ack {
            self.scoreboard.insert(ack.seq);
            self.rtx_sent.remove(&ack.seq);
        }
        if self.in_recovery {
            self.recovery_quota += 1.0;
        }

        if ack.cum_ack > self.snd_una {
            // Forward progress.
            out.newly_acked = ack.cum_ack - self.snd_una;
            self.snd_una = ack.cum_ack;
            // A go-back-N rewind (after an RTO) may leave next_seq behind
            // the frontier if old in-flight packets completed the window.
            if self.next_seq < self.snd_una {
                self.next_seq = self.snd_una;
            }
            self.dup_acks = 0;
            self.prune_below_frontier();
            if self.in_recovery && self.snd_una >= self.recover {
                // Full ACK: recovery complete. (Partial ACKs need no
                // special retransmission step — the hole scan covers every
                // gap — and recovery is progressing, so the RTO re-arms.)
                self.in_recovery = false;
                self.rtx_sent.clear();
            }
            if self.all_acked() {
                self.disarm_rto();
            } else {
                self.arm_rto(now);
            }
        } else {
            // Duplicate ACK.
            self.dup_acks += 1;
            if !self.in_recovery && self.dup_acks == DUPACK_THRESHOLD && !self.all_acked() {
                self.in_recovery = true;
                self.recover = self.next_seq;
                self.hole_cursor = self.snd_una;
                self.recovery_quota = DUPACK_THRESHOLD as f64;
                self.rtx_sent.clear();
                self.stats.fast_retransmits += 1;
                out.fast_retransmit = true;
                self.cc.on_loss(now, LossEvent::FastRetransmit);
            }
        }

        let info = AckInfo {
            now,
            rtt_sample,
            min_rtt: self.min_rtt,
            srtt: self.srtt.unwrap_or(rtt_sample),
            echo_ts: ack.echo_ts,
            seq: ack.seq,
            newly_acked: out.newly_acked,
            in_flight: self.in_flight(),
            in_recovery: self.in_recovery,
            ecn_echo: ack.ecn_echo,
            xcp_feedback: ack.xcp_feedback,
        };
        self.cc.on_ack(&info);
        out
    }

    /// An RTO timer scheduled with `generation` fired at `now`. Returns
    /// `true` if a timeout was actually taken (stale or disarmed timers
    /// return `false`).
    pub fn on_rto_fire(&mut self, now: Ns, generation: u64) -> bool {
        let Some(deadline) = self.rto_deadline else {
            return false;
        };
        if generation != self.rto_generation || now < deadline {
            return false; // stale timer
        }
        if self.all_acked() {
            self.disarm_rto();
            return false;
        }
        // Timeout: collapse to go-back-N. Rewinding next_seq to the
        // frontier makes the pipe estimate zero so retransmission can
        // proceed under the post-timeout window; the scoreboard lets the
        // resend pass skip delivered sequences.
        self.stats.timeouts += 1;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.rtx_sent.clear();
        self.rewound_through = self.rewound_through.max(self.next_seq);
        self.next_seq = self.snd_una;
        self.rto = self.rto.mul_f64(2.0).min(MAX_RTO);
        self.arm_rto(now);
        self.cc.on_loss(now, LossEvent::Timeout);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedWindow;
    use crate::packet::{Ack, FlowId};

    fn ack(cum: u64, seq: u64, echo: Ns) -> Ack {
        Ack {
            flow: FlowId::first(0),
            cum_ack: cum,
            seq,
            echo_ts: echo,
            received_at: Ns::ZERO,
            ecn_echo: false,
            xcp_feedback: None,
            new_data: true,
        }
    }

    fn transport(window: f64) -> Transport {
        let mut t = Transport::new(Box::new(FixedWindow::new(window)));
        t.start_connection(Ns::ZERO);
        t
    }

    #[test]
    fn sends_up_to_window_then_idles() {
        let mut t = transport(3.0);
        for i in 0..3 {
            match t.poll_send(Ns(i), true) {
                SendPoll::Send { seq, retransmit } => {
                    assert_eq!(seq, i);
                    assert!(!retransmit);
                    t.on_sent(Ns(i), seq, false);
                }
                other => panic!("expected send, got {other:?}"),
            }
        }
        assert_eq!(t.in_flight(), 3);
        assert_eq!(t.poll_send(Ns(10), true), SendPoll::Idle);
    }

    #[test]
    fn idle_when_no_data() {
        let mut t = transport(10.0);
        assert_eq!(t.poll_send(Ns::ZERO, false), SendPoll::Idle);
    }

    #[test]
    fn cumulative_ack_advances_frontier() {
        let mut t = transport(10.0);
        for i in 0..5 {
            t.on_sent(Ns(i), i, false);
        }
        let out = t.on_ack(Ns::from_millis(100), &ack(3, 2, Ns(2)));
        assert_eq!(out.newly_acked, 3);
        assert_eq!(t.snd_una(), 3);
        assert_eq!(t.in_flight(), 2);
        assert!(!t.all_acked());
        let out = t.on_ack(Ns::from_millis(101), &ack(5, 4, Ns(4)));
        assert_eq!(out.newly_acked, 2);
        assert!(t.all_acked());
        assert!(t.rto_deadline().is_none(), "RTO disarmed when idle");
    }

    #[test]
    fn scoreboard_deflates_pipe() {
        let mut t = transport(10.0);
        for i in 0..6 {
            t.on_sent(Ns(i), i, false);
        }
        assert_eq!(t.in_flight(), 6);
        // Packet 0 lost; dup ACKs for 1 and 2 shrink the pipe.
        t.on_ack(Ns::from_millis(100), &ack(0, 1, Ns(1)));
        t.on_ack(Ns::from_millis(101), &ack(0, 2, Ns(2)));
        assert_eq!(t.in_flight(), 4);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit_once() {
        let mut t = transport(10.0);
        for i in 0..6 {
            t.on_sent(Ns(i), i, false);
        }
        // Packet 0 lost; packets 1..4 arrive producing dup ACKs (cum 0).
        let mut fired = 0;
        for k in 1..=4 {
            let out = t.on_ack(Ns::from_millis(100 + k), &ack(0, k, Ns(k)));
            if out.fast_retransmit {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "exactly one fast retransmit per episode");
        assert_eq!(t.stats.fast_retransmits, 1);
        // The retransmission of seq 0 must be offered.
        match t.poll_send(Ns::from_millis(110), false) {
            SendPoll::Send {
                seq: 0,
                retransmit: true,
            } => {}
            other => panic!("expected rtx of 0, got {other:?}"),
        }
    }

    #[test]
    fn recovery_retransmits_all_holes_in_one_window() {
        // Packets 0, 2, 4 lost out of 0..8: after recovery starts, the
        // hole scan must offer 0, then 2, then 4 back to back.
        let mut t = transport(20.0);
        for i in 0..8 {
            t.on_sent(Ns(i), i, false);
        }
        for (k, seq) in [1u64, 3, 5, 6, 7].iter().enumerate() {
            t.on_ack(Ns::from_millis(100 + k as u64), &ack(0, *seq, Ns(*seq)));
        }
        let mut holes = Vec::new();
        for k in 0..3 {
            match t.poll_send(Ns::from_millis(110 + k), false) {
                SendPoll::Send {
                    seq,
                    retransmit: true,
                } => {
                    holes.push(seq);
                    t.on_sent(Ns::from_millis(110 + k), seq, true);
                }
                other => panic!("expected hole rtx, got {other:?}"),
            }
        }
        assert_eq!(holes, vec![0, 2, 4]);
        assert_eq!(t.poll_send(Ns::from_millis(120), false), SendPoll::Idle);
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut t = transport(10.0);
        for i in 0..6 {
            t.on_sent(Ns(i), i, false);
        }
        for k in 1..=5 {
            t.on_ack(Ns::from_millis(100 + k), &ack(0, k, Ns(k)));
        }
        if let SendPoll::Send {
            seq: 0,
            retransmit: true,
        } = t.poll_send(Ns::from_millis(110), false)
        {
            t.on_sent(Ns::from_millis(110), 0, true);
        } else {
            panic!("expected rtx");
        }
        // Full ACK through 6 ends recovery.
        t.on_ack(Ns::from_millis(200), &ack(6, 0, Ns::from_millis(110)));
        assert!(t.all_acked());
        assert_eq!(t.poll_send(Ns::from_millis(210), false), SendPoll::Idle);
    }

    #[test]
    fn partial_ack_advances_hole_scan() {
        let mut t = transport(20.0);
        for i in 0..8 {
            t.on_sent(Ns(i), i, false);
        }
        // Packets 0 and 3 lost. Dup ACKs from 1, 2, 4.
        for seq in [1u64, 2, 4] {
            t.on_ack(Ns::from_millis(100 + seq), &ack(0, seq, Ns(seq)));
        }
        // Retransmit hole 0; hole 3 is next.
        if let SendPoll::Send {
            seq: 0,
            retransmit: true,
        } = t.poll_send(Ns::from_millis(110), false)
        {
            t.on_sent(Ns::from_millis(110), 0, true);
        } else {
            panic!("expected rtx of 0");
        }
        match t.poll_send(Ns::from_millis(111), false) {
            SendPoll::Send {
                seq: 3,
                retransmit: true,
            } => {
                t.on_sent(Ns::from_millis(111), 3, true);
            }
            other => panic!("expected rtx of 3, got {other:?}"),
        }
        // Partial ACK for the first hole: recovery continues.
        t.on_ack(Ns::from_millis(200), &ack(3, 0, Ns::from_millis(110)));
        assert_eq!(t.snd_una(), 3);
        // Full ACK after the second hole arrives.
        t.on_ack(Ns::from_millis(201), &ack(8, 3, Ns::from_millis(111)));
        assert!(t.all_acked());
    }

    #[test]
    fn timeout_rewinds_and_backs_off() {
        let mut t = transport(4.0);
        for i in 0..4 {
            t.on_sent(Ns(i), i, false);
        }
        let (deadline, generation) = t.rto_deadline().expect("armed");
        let fired = t.on_rto_fire(deadline, generation);
        assert!(fired);
        assert_eq!(t.stats.timeouts, 1);
        assert_eq!(t.in_flight(), 0, "pipe collapsed for go-back-N");
        match t.poll_send(deadline + Ns(1), true) {
            SendPoll::Send { seq: 0, .. } => {}
            other => panic!("expected resend of 0, got {other:?}"),
        }
    }

    #[test]
    fn rewind_skips_sequences_the_receiver_has() {
        let mut t = transport(8.0);
        for i in 0..5 {
            t.on_sent(Ns(i), i, false);
        }
        // Receiver got 1 and 3 (dup ACKs); 0, 2, 4 lost; RTO fires.
        t.on_ack(Ns::from_millis(10), &ack(0, 1, Ns(1)));
        t.on_ack(Ns::from_millis(11), &ack(0, 3, Ns(3)));
        let (deadline, generation) = t.rto_deadline().unwrap();
        assert!(t.on_rto_fire(deadline + Ns::SECOND, generation));
        let mut resent = Vec::new();
        while let SendPoll::Send { seq, retransmit } =
            t.poll_send(deadline + Ns::SECOND + Ns(resent.len() as u64 + 1), false)
        {
            assert!(retransmit);
            resent.push(seq);
            t.on_sent(Ns(deadline.0 + 1_000_000 + resent.len() as u64), seq, true);
        }
        assert_eq!(resent, vec![0, 2, 4], "delivered sequences skipped");
    }

    #[test]
    fn rewind_resends_without_fresh_traffic_budget() {
        let mut t = transport(8.0);
        for i in 0..5 {
            t.on_sent(Ns(i), i, false);
        }
        let (deadline, generation) = t.rto_deadline().unwrap();
        assert!(t.on_rto_fire(deadline, generation));
        let mut resent = Vec::new();
        for k in 0..5 {
            match t.poll_send(deadline + Ns(k + 1), false) {
                SendPoll::Send { seq, retransmit } => {
                    assert!(retransmit, "rewind resends are retransmissions");
                    resent.push(seq);
                    t.on_sent(deadline + Ns(k + 1), seq, retransmit);
                }
                other => panic!("expected resend #{k}, got {other:?}"),
            }
        }
        assert_eq!(resent, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.poll_send(deadline + Ns(100), false), SendPoll::Idle);
    }

    #[test]
    fn consecutive_timeouts_back_off_exponentially_to_the_cap() {
        // Audit of the RTO backoff law: each timeout doubles the RTO
        // (deadline gaps 2 s, 4 s, 8 s from the 1 s initial value), the
        // doubling caps at MAX_RTO, and a fresh RTT sample resets the
        // timer to the RFC 6298 estimate.
        let mut t = transport(4.0);
        t.on_sent(Ns::ZERO, 0, false);
        let (d0, g0) = t.rto_deadline().expect("armed on first send");
        assert_eq!(d0, Ns::SECOND, "initial RTO is 1 s before any sample");

        // Each episode: the timer fires, the engine's try_send resends the
        // rewound packet (which is then lost again), and the next deadline
        // must sit one doubled RTO after the fire.
        let fire_and_resend = |t: &mut Transport, deadline: Ns, generation: u64| -> Ns {
            assert!(t.on_rto_fire(deadline, generation), "timeout taken");
            match t.poll_send(deadline + Ns(1), false) {
                SendPoll::Send {
                    seq: 0,
                    retransmit: true,
                } => t.on_sent(deadline + Ns(1), 0, true),
                other => panic!("expected go-back-N resend, got {other:?}"),
            }
            let (d, _) = t.rto_deadline().expect("re-armed");
            d
        };

        // Three consecutive timeouts: deadlines at +2 s, +4 s, +8 s.
        let d1 = fire_and_resend(&mut t, d0, g0);
        assert_eq!(d1 - d0, Ns::from_secs(2), "first backoff doubles to 2 s");
        let g1 = t.rto_deadline().unwrap().1;
        let d2 = fire_and_resend(&mut t, d1, g1);
        assert_eq!(d2 - d1, Ns::from_secs(4), "second backoff doubles to 4 s");
        let g2 = t.rto_deadline().unwrap().1;
        let d3 = fire_and_resend(&mut t, d2, g2);
        assert_eq!(d3 - d2, Ns::from_secs(8), "third backoff doubles to 8 s");
        assert_eq!(t.stats.timeouts, 3);

        // Keep timing out: the armed gap saturates at MAX_RTO, never past.
        let mut prev = d3;
        for _ in 0..6 {
            let gen = t.rto_deadline().unwrap().1;
            let d = fire_and_resend(&mut t, prev, gen);
            assert!(d - prev <= MAX_RTO, "RTO capped at MAX_RTO");
            prev = d;
        }
        let before_cap = prev;
        let gen = t.rto_deadline().unwrap().1;
        let d = fire_and_resend(&mut t, prev, gen);
        assert_eq!(d - before_cap, MAX_RTO, "backoff pinned at the cap");

        // Recovery: the last resend (sent at before_cap + 1 ns) finally
        // gets through and is ACKed with a 100 ms RTT sample; the next
        // armed deadline must use the sample-driven RTO
        // (srtt + 4·rttvar = 300 ms), not the backed-off 60 s.
        let resend_at = before_cap + Ns(1);
        let ack_at = resend_at + Ns::from_millis(100);
        t.on_ack(ack_at, &ack(1, 0, resend_at));
        t.on_sent(ack_at + Ns(1), 1, false);
        let (d_new, _) = t.rto_deadline().expect("armed for new data");
        assert_eq!(
            d_new - (ack_at + Ns(1)),
            Ns::from_millis(300),
            "a new RTT sample resets the backed-off RTO"
        );
    }

    #[test]
    fn stale_rto_generation_is_ignored() {
        let mut t = transport(4.0);
        t.on_sent(Ns::ZERO, 0, false);
        let (deadline, generation) = t.rto_deadline().expect("armed");
        // ACK advances the frontier and disarms; new send re-arms with a
        // fresh generation.
        t.on_ack(Ns::from_millis(50), &ack(1, 0, Ns::ZERO));
        t.on_sent(Ns::from_millis(51), 1, false);
        assert!(!t.on_rto_fire(deadline + Ns::SECOND, generation));
        assert_eq!(t.stats.timeouts, 0);
    }

    #[test]
    fn rtt_estimation_tracks_samples() {
        let mut t = transport(10.0);
        t.on_sent(Ns::ZERO, 0, false);
        t.on_ack(Ns::from_millis(100), &ack(1, 0, Ns::ZERO));
        assert_eq!(t.min_rtt(), Ns::from_millis(100));
        t.on_sent(Ns::from_millis(100), 1, false);
        t.on_ack(Ns::from_millis(180), &ack(2, 1, Ns::from_millis(100)));
        assert_eq!(t.min_rtt(), Ns::from_millis(80));
    }

    #[test]
    fn pacing_defers_transmission() {
        let cc = FixedWindow::new(10.0).with_pacing(Ns::from_millis(5));
        let mut t = Transport::new(Box::new(cc));
        t.start_connection(Ns::ZERO);
        if let SendPoll::Send { seq, .. } = t.poll_send(Ns::ZERO, true) {
            t.on_sent(Ns::ZERO, seq, false);
        } else {
            panic!("first send must pass");
        }
        match t.poll_send(Ns::from_millis(1), true) {
            SendPoll::Paced { until } => assert_eq!(until, Ns::from_millis(5)),
            other => panic!("expected paced, got {other:?}"),
        }
        assert!(matches!(
            t.poll_send(Ns::from_millis(5), true),
            SendPoll::Send { .. }
        ));
    }

    #[test]
    fn start_connection_resets_estimators_but_not_seqs() {
        let mut t = transport(10.0);
        t.on_sent(Ns::ZERO, 0, false);
        t.on_ack(Ns::from_millis(100), &ack(1, 0, Ns::ZERO));
        assert_eq!(t.min_rtt(), Ns::from_millis(100));
        t.start_connection(Ns::from_secs(2));
        assert_eq!(t.min_rtt(), Ns::MAX, "estimators reset");
        assert_eq!(t.next_seq(), 1, "sequence space continues");
    }

    #[test]
    fn new_data_flows_during_recovery_as_pipe_deflates() {
        let mut t = transport(4.0);
        for i in 0..4 {
            t.on_sent(Ns(i), i, false);
        }
        // Window full (pipe 4 = cwnd 4). Dup ACKs deflate the pipe.
        for k in 1..=3 {
            t.on_ack(Ns::from_millis(k), &ack(0, k, Ns(k)));
        }
        // pipe = 4 − 3 sacked = 1 < 4: hole 0 goes first…
        if let SendPoll::Send {
            seq: 0,
            retransmit: true,
        } = t.poll_send(Ns::from_millis(10), true)
        {
            t.on_sent(Ns::from_millis(10), 0, true);
        } else {
            panic!();
        }
        // …then pipe = 2 < 4 admits new data.
        match t.poll_send(Ns::from_millis(12), true) {
            SendPoll::Send {
                seq: 4,
                retransmit: false,
            } => {}
            other => panic!("expected new data during recovery, got {other:?}"),
        }
    }
}
