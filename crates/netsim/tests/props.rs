//! Property-based tests of netsim's core invariants.

use netsim::link::DeliverySchedule;
use netsim::packet::Packet;
use netsim::queue::{Codel, DropTail, Enqueue, Queue, SfqCodel};
use netsim::rng::SimRng;
use netsim::stats;
use netsim::time::Ns;
use proptest::prelude::*;

fn pkt(flow: usize, seq: u64) -> Packet {
    Packet::data(flow, seq, 1500, Ns::ZERO)
}

proptest! {
    /// Ns::from_secs_f64 round-trips within a nanosecond for sane values.
    #[test]
    fn ns_round_trip(secs in 0.0f64..1e6) {
        let ns = Ns::from_secs_f64(secs);
        prop_assert!((ns.as_secs_f64() - secs).abs() < 1e-9 * secs.max(1.0));
    }

    /// Saturating arithmetic never panics or wraps.
    #[test]
    fn ns_saturating(a in any::<u64>(), b in any::<u64>()) {
        let x = Ns(a).saturating_sub(Ns(b));
        prop_assert!(x.0 <= a);
        let y = Ns(a).saturating_add(Ns(b));
        prop_assert!(y.0 >= a.max(b) || y == Ns::MAX);
    }

    /// DropTail conserves packets: everything enqueued is either dropped
    /// (counted) or eventually dequeued, in FIFO order.
    #[test]
    fn droptail_conserves(cap in 1usize..64, ops in prop::collection::vec(0u8..3, 1..200)) {
        let mut q = DropTail::new(cap);
        let mut inserted = 0u64;
        let mut removed = 0u64;
        let mut next_seq = 0u64;
        let mut expected_head = 0u64;
        for op in ops {
            if op < 2 {
                match q.enqueue(Ns(inserted), pkt(0, next_seq)) {
                    Enqueue::Queued => { inserted += 1; next_seq += 1; }
                    Enqueue::Dropped => { next_seq += 1; }
                }
            } else if let Some(p) = q.dequeue(Ns(1000)) {
                prop_assert!(p.seq >= expected_head, "FIFO order");
                expected_head = p.seq + 1;
                removed += 1;
            }
        }
        while q.dequeue(Ns(2000)).is_some() { removed += 1; }
        prop_assert_eq!(inserted, removed);
        prop_assert_eq!(q.bytes(), 0);
    }

    /// CoDel never loses packets silently: enqueued = dequeued + drops.
    #[test]
    fn codel_accounts_for_everything(n in 1usize..300, delay_ms in 0u64..200) {
        let mut q = Codel::new(1000);
        for i in 0..n {
            q.enqueue(Ns::ZERO, pkt(0, i as u64));
        }
        let mut out = 0u64;
        let mut t = Ns::from_millis(delay_ms);
        for _ in 0..(2 * n) {
            if q.dequeue(t).is_some() { out += 1; }
            t += Ns::from_millis(1);
            if q.is_empty() { break; }
        }
        prop_assert_eq!(out + q.drops() + q.len() as u64, n as u64);
    }

    /// sfqCoDel with ample capacity conserves packets across flows.
    #[test]
    fn sfq_conserves(flows in 1usize..10, per_flow in 1usize..20) {
        let mut q = SfqCodel::new(100_000, 32);
        for f in 0..flows {
            for s in 0..per_flow {
                q.enqueue(Ns::ZERO, pkt(f, s as u64));
            }
        }
        let mut got = vec![0usize; flows];
        while let Some(p) = q.dequeue(Ns::from_micros(1)) {
            got[p.flow] += 1;
        }
        for &count in &got {
            prop_assert_eq!(count, per_flow);
        }
    }

    /// Delivery schedules: next_after is strictly increasing and respects
    /// the period structure.
    #[test]
    fn schedule_monotonic(
        gaps in prop::collection::vec(1u64..1_000_000, 1..50),
        tail in 1u64..1_000_000,
        start in 0u64..10_000_000,
    ) {
        let mut t = 0u64;
        let instants: Vec<Ns> = gaps.iter().map(|g| { t += g; Ns(t) }).collect();
        let s = DeliverySchedule::new(instants, Ns(tail));
        let mut prev = Ns(start);
        for _ in 0..20 {
            let next = s.next_after(prev);
            prop_assert!(next > prev);
            prev = next;
        }
    }

    /// Quantiles are monotone in q and bounded by the sample range.
    #[test]
    fn quantiles_monotone(mut xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = xs[0];
        let hi = xs[xs.len() - 1];
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let q = stats::quantile(&xs, k as f64 / 10.0);
            prop_assert!(q >= prev - 1e-9);
            prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9);
            prev = q;
        }
    }

    /// The RNG's uniform range draws stay in bounds for arbitrary bounds.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        let hi = lo + span;
        for _ in 0..100 {
            let x = rng.range_u64(lo, hi);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    /// Exponential draws are non-negative; pareto draws respect the floor.
    #[test]
    fn rng_distributions_bounds(seed in any::<u64>(), mean in 0.001f64..100.0) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.exponential(mean) >= 0.0);
            prop_assert!(rng.pareto(mean, 0.5) >= mean);
        }
    }
}
