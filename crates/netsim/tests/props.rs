//! Property-based tests of netsim's core invariants.

use netsim::cc::FixedWindow;
use netsim::flow::{FlowCold, FlowHot, FlowTable, Receiver};
use netsim::link::DeliverySchedule;
use netsim::metrics::FlowMetrics;
use netsim::packet::{FlowId, Packet, PacketArena, PacketId};
use netsim::queue::{Codel, DropTail, Enqueue, Queue, SfqCodel};
use netsim::rng::SimRng;
use netsim::sched::{EventQueue, SchedulerKind};
use netsim::stats;
use netsim::time::Ns;
use netsim::traffic::TrafficProcess;
use netsim::transport::Transport;
use proptest::prelude::*;

fn pkt(flow: usize, seq: u64) -> Packet {
    Packet::data(FlowId::first(flow), seq, 1500, Ns::ZERO)
}

fn cold_flow(bytes: u64) -> FlowCold {
    FlowCold {
        transport: Transport::new(Box::new(FixedWindow::new(10.0))),
        traffic: TrafficProcess::one_shot(bytes, 1500, Ns::ZERO),
        receiver: Receiver::default(),
        metrics: FlowMetrics::default(),
        fwd_hops: vec![0],
        ack_hops: Vec::new(),
    }
}

fn push(q: &mut dyn Queue, a: &mut PacketArena, now: Ns, p: Packet) -> Enqueue {
    let id = a.alloc(p);
    q.enqueue(now, id, a)
}

fn pull(q: &mut dyn Queue, a: &mut PacketArena, now: Ns) -> Option<Packet> {
    let id = q.dequeue(now, a)?;
    let p = a[id].clone();
    a.free(id);
    Some(p)
}

proptest! {
    /// Ns::from_secs_f64 round-trips within a nanosecond for sane values.
    #[test]
    fn ns_round_trip(secs in 0.0f64..1e6) {
        let ns = Ns::from_secs_f64(secs);
        prop_assert!((ns.as_secs_f64() - secs).abs() < 1e-9 * secs.max(1.0));
    }

    /// Saturating arithmetic never panics or wraps.
    #[test]
    fn ns_saturating(a in any::<u64>(), b in any::<u64>()) {
        let x = Ns(a).saturating_sub(Ns(b));
        prop_assert!(x.0 <= a);
        let y = Ns(a).saturating_add(Ns(b));
        prop_assert!(y.0 >= a.max(b) || y == Ns::MAX);
    }

    /// DropTail conserves packets: everything enqueued is either dropped
    /// (counted, slot freed) or eventually dequeued, in FIFO order.
    #[test]
    fn droptail_conserves(cap in 1usize..64, ops in prop::collection::vec(0u8..3, 1..200)) {
        let mut arena = PacketArena::new();
        let mut q = DropTail::new(cap);
        let mut inserted = 0u64;
        let mut removed = 0u64;
        let mut next_seq = 0u64;
        let mut expected_head = 0u64;
        for op in ops {
            if op < 2 {
                match push(&mut q, &mut arena, Ns(inserted), pkt(0, next_seq)) {
                    Enqueue::Queued => { inserted += 1; next_seq += 1; }
                    Enqueue::Dropped => { next_seq += 1; }
                }
            } else if let Some(p) = pull(&mut q, &mut arena, Ns(1000)) {
                prop_assert!(p.seq >= expected_head, "FIFO order");
                expected_head = p.seq + 1;
                removed += 1;
            }
        }
        while pull(&mut q, &mut arena, Ns(2000)).is_some() { removed += 1; }
        prop_assert_eq!(inserted, removed);
        prop_assert_eq!(q.bytes(), 0);
        prop_assert_eq!(arena.live(), 0);
    }

    /// CoDel never loses packets silently: enqueued = dequeued + drops.
    #[test]
    fn codel_accounts_for_everything(n in 1usize..300, delay_ms in 0u64..200) {
        let mut arena = PacketArena::new();
        let mut q = Codel::new(1000);
        for i in 0..n {
            push(&mut q, &mut arena, Ns::ZERO, pkt(0, i as u64));
        }
        let mut out = 0u64;
        let mut t = Ns::from_millis(delay_ms);
        for _ in 0..(2 * n) {
            if pull(&mut q, &mut arena, t).is_some() { out += 1; }
            t += Ns::from_millis(1);
            if q.is_empty() { break; }
        }
        prop_assert_eq!(out + q.drops() + q.len() as u64, n as u64);
        prop_assert_eq!(arena.live(), q.len(), "arena tracks exactly the queued packets");
    }

    /// sfqCoDel with ample capacity conserves packets across flows.
    #[test]
    fn sfq_conserves(flows in 1usize..10, per_flow in 1usize..20) {
        let mut arena = PacketArena::new();
        let mut q = SfqCodel::new(100_000, 32);
        for f in 0..flows {
            for s in 0..per_flow {
                push(&mut q, &mut arena, Ns::ZERO, pkt(f, s as u64));
            }
        }
        let mut got = vec![0usize; flows];
        while let Some(p) = pull(&mut q, &mut arena, Ns::from_micros(1)) {
            got[p.flow.index() as usize] += 1;
        }
        for &count in &got {
            prop_assert_eq!(count, per_flow);
        }
        prop_assert_eq!(arena.live(), 0);
    }

    /// The timing wheel and the binary heap dequeue any randomized event
    /// workload in the identical (time, insertion-id) order — including
    /// same-timestamp bursts, zero-delay self-schedules, and far-future
    /// RTO-style deadlines — under arbitrary push/pop interleavings.
    #[test]
    fn wheel_matches_heap_on_random_workloads(
        ops in prop::collection::vec((0u8..4, 0u32..8, any::<u64>()), 1..300),
    ) {
        let mut heap = EventQueue::new(SchedulerKind::Heap);
        let mut wheel = EventQueue::new(SchedulerKind::Wheel);
        let mut now = Ns::ZERO; // time of the last pop: pushes never precede it
        let mut payload = 0u64;
        for (op, burst, raw) in ops {
            if op < 3 {
                // Push a burst of events at one instant. Offsets mix the
                // engine's regimes: same-instant (0), sub-granule jitter,
                // typical RTT-scale delays, and far-future RTO deadlines.
                let offset = match op {
                    0 => 0,
                    1 => raw % 1_000,                       // within one wheel granule
                    _ => raw % (120 * 1_000_000_000),       // up to two minutes out
                };
                let at = now.saturating_add(Ns(offset));
                for _ in 0..=burst {
                    heap.push(at, payload);
                    wheel.push(at, payload);
                    payload += 1;
                }
            } else {
                let (a, b) = (heap.pop(), wheel.pop());
                prop_assert_eq!(a, b, "pop order diverged");
                if let Some((at, _, _)) = a { now = at; }
            }
            prop_assert_eq!(heap.len(), wheel.len());
        }
        // Drain: the tails must agree element-for-element too.
        loop {
            let (a, b) = (heap.pop(), wheel.pop());
            prop_assert_eq!(a, b, "drain order diverged");
            if a.is_none() { break; }
        }
    }

    /// Recycled arena slots never alias: after any alloc/free interleaving,
    /// every freed handle is dead and every live handle still reads its
    /// own packet.
    #[test]
    fn arena_generations_never_alias(ops in prop::collection::vec((any::<bool>(), any::<u32>()), 1..200)) {
        let mut arena = PacketArena::new();
        let mut live: Vec<(PacketId, u64)> = Vec::new();
        let mut dead: Vec<PacketId> = Vec::new();
        let mut stamp = 0u64;
        for (do_alloc, pick) in ops {
            if do_alloc || live.is_empty() {
                let id = arena.alloc(pkt(7, stamp));
                live.push((id, stamp));
                stamp += 1;
            } else {
                let idx = pick as usize % live.len();
                let (id, _) = live.swap_remove(idx);
                arena.free(id);
                dead.push(id);
            }
            for (id, seq) in &live {
                prop_assert!(arena.contains(*id));
                prop_assert_eq!(arena[*id].seq, *seq, "live handle reads its own packet");
            }
            for id in &dead {
                prop_assert!(!arena.contains(*id), "freed handle stays dead forever");
            }
        }
        prop_assert_eq!(arena.live(), live.len());
    }

    /// The flow table mirrors the arena's guarantee: after any
    /// spawn/teardown interleaving (respawning into freed slots whenever
    /// one exists, exactly as churn does), every freed `FlowId` is dead
    /// forever and every live one still reads its own flow's state.
    #[test]
    fn flow_table_generations_never_alias(ops in prop::collection::vec((any::<bool>(), any::<u32>()), 1..200)) {
        let mut table = FlowTable::new();
        let mut live: Vec<(FlowId, u64)> = Vec::new();
        let mut dead: Vec<FlowId> = Vec::new();
        let mut stamp = 1u64;
        for (do_spawn, pick) in ops {
            if do_spawn || live.is_empty() {
                let s = stamp;
                let id = match table.respawn(|hot, cold| {
                    hot.next_seq = s;
                    cold.traffic.reset_one_shot(s, Ns::ZERO);
                }) {
                    Some(id) => id,
                    None => table.insert(
                        FlowHot { next_seq: s, ..FlowHot::default() },
                        cold_flow(s),
                    ),
                };
                live.push((id, s));
                stamp += 1;
            } else {
                let idx = pick as usize % live.len();
                let (id, _) = live.swap_remove(idx);
                table.free(id);
                dead.push(id);
            }
            for (id, s) in &live {
                prop_assert!(table.contains(*id));
                let i = table.index_of(*id).expect("live handle resolves");
                prop_assert_eq!(table.hot(i).next_seq, *s, "live handle reads its own flow");
            }
            for id in &dead {
                prop_assert!(!table.contains(*id), "freed handle stays dead forever");
                prop_assert!(table.index_of(*id).is_none());
            }
            prop_assert!(table.audit_accounting());
        }
        prop_assert_eq!(table.live(), live.len());
        // Slots, not allocations: capacity is bounded by peak concurrency.
        prop_assert!(table.capacity() <= stamp as usize);
    }

    /// Delivery schedules: next_after is strictly increasing and respects
    /// the period structure.
    #[test]
    fn schedule_monotonic(
        gaps in prop::collection::vec(1u64..1_000_000, 1..50),
        tail in 1u64..1_000_000,
        start in 0u64..10_000_000,
    ) {
        let mut t = 0u64;
        let instants: Vec<Ns> = gaps.iter().map(|g| { t += g; Ns(t) }).collect();
        let s = DeliverySchedule::new(instants, Ns(tail));
        let mut prev = Ns(start);
        for _ in 0..20 {
            let next = s.next_after(prev);
            prop_assert!(next > prev);
            prev = next;
        }
    }

    /// Counting delivery opportunities matches brute-force enumeration via
    /// next_after over the same window.
    #[test]
    fn schedule_opportunity_count_matches_enumeration(
        gaps in prop::collection::vec(1u64..1_000, 1..12),
        tail in 1u64..1_000,
        window in 0u64..20_000,
    ) {
        let mut t = 0u64;
        let instants: Vec<Ns> = gaps.iter().map(|g| { t += g; Ns(t) }).collect();
        let s = DeliverySchedule::new(instants, Ns(tail));
        let mut brute = 0u64;
        let mut at = Ns::ZERO;
        loop {
            at = s.next_after(at);
            if at > Ns(window) { break; }
            brute += 1;
        }
        prop_assert_eq!(s.opportunities_through(Ns(window)), brute);
    }

    /// Quantiles are monotone in q and bounded by the sample range.
    #[test]
    fn quantiles_monotone(mut xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = xs[0];
        let hi = xs[xs.len() - 1];
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let q = stats::quantile(&xs, k as f64 / 10.0);
            prop_assert!(q >= prev - 1e-9);
            prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9);
            prev = q;
        }
    }

    /// The RNG's uniform range draws stay in bounds for arbitrary bounds.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        let hi = lo + span;
        for _ in 0..100 {
            let x = rng.range_u64(lo, hi);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    /// Exponential draws are non-negative; pareto draws respect the floor.
    #[test]
    fn rng_distributions_bounds(seed in any::<u64>(), mean in 0.001f64..100.0) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.exponential(mean) >= 0.0);
            prop_assert!(rng.pareto(mean, 0.5) >= mean);
        }
    }
}
