//! `remy-cli` — run experiments and inspect, evaluate, and compare RemyCC
//! rule tables.
//!
//! ```text
//! remy-cli run <name|spec.json> [--runs N] [--secs S] [--out csv]
//! remy-cli list-experiments [--names]     # the named experiment registry
//! remy-cli spec <name> [--runs N] [--secs S]   # dump an experiment's JSON spec
//! remy-cli topo <name|spec.json>          # dump a resolved topology graph
//! remy-cli inspect <table>                # annotated rule dump
//! remy-cli eval <table> [delta] [specimens] [secs]  # score on the general model
//! remy-cli compare <tableA> <tableB> [runs] [secs]  # head-to-head on Fig. 4
//! remy-cli list                           # shipped tables
//! ```
//!
//! `<table>` is either a shipped asset name (`delta01`, `delta1`,
//! `delta10`, `onex`, `tenx`, `datacenter`, `coexist`) or a path to a
//! JSON rule table produced by `Remy::design` / `train_remycc`.
//!
//! `run` accepts a registry name (`remy-cli list-experiments`) or a path
//! to a user-authored `ExperimentSpec` JSON file; `--runs`/`--secs`
//! override the budget (default: `REMY_RUNS`/`REMY_SIM_SECS`, then the
//! experiment's own default), and `--out csv` prints the CSV to stdout
//! instead of the report + CSV file. `spec` prints at the fixed default
//! budget (16 runs × 30 s) so its output is stable for golden diffs.

use remy_sim::experiment::Experiment;
use remy_sim::experiments;
use remy_sim::prelude::*;
use std::sync::Arc;

fn load(spec: &str) -> Arc<WhiskerTree> {
    if let Some(t) = remy::assets::by_name(spec) {
        return t;
    }
    let text = std::fs::read_to_string(spec)
        .unwrap_or_else(|e| die(&format!("cannot read '{spec}': {e}")));
    Arc::new(
        WhiskerTree::from_json(&text)
            .unwrap_or_else(|e| die(&format!("cannot parse '{spec}': {e}"))),
    )
}

fn die(msg: &str) -> ! {
    eprintln!("remy-cli: {msg}");
    std::process::exit(2)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  remy-cli run <name|spec.json> [--runs N] [--secs S] [--out csv]\n  \
         remy-cli list-experiments [--names]\n  \
         remy-cli spec <name> [--runs N] [--secs S]\n  \
         remy-cli topo <name|spec.json>\n  \
         remy-cli list\n  remy-cli inspect <table>\n  \
         remy-cli eval <table> [delta=1] [specimens=8] [secs=15]\n  \
         remy-cli compare <tableA> <tableB> [runs=8] [secs=20]\n\n\
         options:\n  --jobs N   evaluation worker threads (default: REMY_JOBS or all cores);\n             \
         results are identical at any thread count"
    );
    std::process::exit(2)
}

fn cmd_inspect(table_spec: &str) {
    let table = load(table_spec);
    // Annotate with usage from a quick design-range evaluation so the
    // dump shows which rules actually fire.
    let evaluator = Evaluator::new(
        NetworkModel::general(),
        Objective::proportional(1.0),
        EvalConfig {
            specimens: 4,
            sim_secs: 10.0,
        },
    );
    let specimens = evaluator.specimens(1);
    let (_, usage) = evaluator.evaluate(&table, &specimens);
    print!("{}", remy::inspect::report(&table, Some(&usage)));
}

fn cmd_eval(table_spec: &str, delta: f64, specimens: usize, secs: f64) {
    let table = load(table_spec);
    let evaluator = Evaluator::new(
        NetworkModel::general(),
        Objective::proportional(delta),
        EvalConfig {
            specimens,
            sim_secs: secs,
        },
    );
    let sp = evaluator.specimens(7);
    let score = evaluator.score(&table, &sp);
    println!(
        "table {table_spec}: {} rules, objective log(tput) - {delta} log(delay)",
        table.len()
    );
    println!("score over {specimens} general-model specimens x {secs:.0}s: {score:.3}");
}

fn cmd_compare(a_spec: &str, b_spec: &str, runs: usize, secs: u64) {
    let spec = ExperimentSpec::new(
        "compare",
        "Fig. 4 dumbbell head-to-head",
        experiments::dumbbell_workload(8),
        vec![],
        Budget {
            runs,
            sim_secs: secs,
        },
        12,
    );
    println!("Fig. 4 dumbbell (15 Mbps, 150 ms, n=8), {runs} runs x {secs} s:");
    let point = &spec.points()[0];
    for table in [a_spec, b_spec] {
        let c = Contender::remy(table.to_string(), load(table));
        let scenarios = spec.scenarios_at(0, point, &c).unwrap_or_else(|e| die(&e));
        println!("{}", evaluate_scenarios(&c, &scenarios).row());
    }
}

fn cmd_list_experiments(names_only: bool) {
    if names_only {
        // Machine-readable: one registry name per line (CI loops over
        // this to regenerate and diff every golden spec).
        for e in experiments::all() {
            println!("{}", e.name);
        }
        return;
    }
    println!(
        "{:<24} {:<24} {:<16} description",
        "name", "csv", "topology"
    );
    for e in experiments::all() {
        let class = e
            .spec(Budget::default_fixed())
            .workload
            .topology
            .map(|t| t.class())
            .unwrap_or_else(|| "-".to_string());
        println!("{:<24} {:<24} {:<16} {}", e.name, e.csv, class, e.about);
    }
    println!("\nrun one with:   remy-cli run <name> [--runs N] [--secs S]");
    println!("dump its spec:  remy-cli spec <name>");
    println!("its topology:   remy-cli topo <name>");
}

/// `topo`: dump the resolved network of a topology experiment — routers,
/// links, and the per-flow routes the engine computed — as stable JSON,
/// for eyeballing a generated graph and for golden diffs in scripts.
fn cmd_topo(target: &str) {
    use netsim::json::{ns_value, u64_value, Value};
    let spec = if let Some(entry) = experiments::by_name(target) {
        entry.spec(Budget::default_fixed())
    } else if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target)
            .unwrap_or_else(|e| die(&format!("cannot read '{target}': {e}")));
        ExperimentSpec::from_json(&text)
            .unwrap_or_else(|e| die(&format!("cannot parse '{target}': {e}")))
    } else {
        die(&format!(
            "'{target}' is neither a registered experiment nor a spec file"
        ))
    };
    let topo_spec = spec.workload.topology.as_ref().unwrap_or_else(|| {
        die(&format!(
            "'{}' runs on the plain dumbbell; no topology to dump",
            spec.name
        ))
    });
    // The queue discipline never affects the graph or the routes, so the
    // dump resolves with plain DropTail (hops keep their own capacities).
    let topo = topo_spec
        .resolve(&QueueSpec::DropTail { capacity: 1000 })
        .unwrap_or_else(|e| die(&e));
    let path_value =
        |hops: &[usize]| Value::Arr(hops.iter().map(|&h| u64_value(h as u64)).collect());
    let doc = match &topo.graph {
        Some(g) => {
            let routers = Value::Arr(g.routers.iter().map(Value::str).collect());
            let links = Value::Arr(
                g.links
                    .iter()
                    .enumerate()
                    .map(|(i, l)| {
                        Value::obj(vec![
                            ("id", u64_value(i as u64)),
                            ("from", Value::str(g.routers[l.src as usize].clone())),
                            ("to", Value::str(g.routers[l.dst as usize].clone())),
                            ("weight", u64_value(l.weight)),
                            ("prop_delay_ns", ns_value(topo.hops[i].prop_delay_out)),
                        ])
                    })
                    .collect(),
            );
            let events = Value::Arr(
                g.events
                    .iter()
                    .map(|e| {
                        Value::obj(vec![
                            ("at_ns", ns_value(e.at)),
                            ("link", u64_value(e.link as u64)),
                            ("up", Value::Bool(e.up)),
                        ])
                    })
                    .collect(),
            );
            let flows = Value::Arr(
                g.flows
                    .iter()
                    .zip(&topo.paths)
                    .enumerate()
                    .map(|(i, (&(s, d), p))| {
                        // The hop-by-hop router walk: the source, then the
                        // far end of each forward link in order.
                        let via: Vec<Value> = std::iter::once(s)
                            .chain(p.fwd.iter().map(|&h| g.links[h].dst))
                            .map(|r| Value::str(g.routers[r as usize].clone()))
                            .collect();
                        Value::obj(vec![
                            ("id", u64_value(i as u64)),
                            ("src", Value::str(g.routers[s as usize].clone())),
                            ("dst", Value::str(g.routers[d as usize].clone())),
                            ("via", Value::Arr(via)),
                            ("fwd", path_value(&p.fwd)),
                            ("ack", path_value(&p.ack)),
                        ])
                    })
                    .collect(),
            );
            Value::obj(vec![
                ("experiment", Value::str(spec.name.clone())),
                ("kind", Value::str("graph")),
                ("policy", Value::str(g.policy.name())),
                ("routers", routers),
                ("links", links),
                ("events", events),
                ("flows", flows),
            ])
        }
        None => {
            let hops = Value::Arr(
                topo.hops
                    .iter()
                    .enumerate()
                    .map(|(i, h)| {
                        Value::obj(vec![
                            ("id", u64_value(i as u64)),
                            ("prop_delay_ns", ns_value(h.prop_delay_out)),
                        ])
                    })
                    .collect(),
            );
            let flows = Value::Arr(
                topo.paths
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        Value::obj(vec![
                            ("id", u64_value(i as u64)),
                            ("fwd", path_value(&p.fwd)),
                            ("ack", path_value(&p.ack)),
                        ])
                    })
                    .collect(),
            );
            Value::obj(vec![
                ("experiment", Value::str(spec.name.clone())),
                ("kind", Value::str("hops")),
                ("hops", hops),
                ("flows", flows),
            ])
        }
    };
    println!("{}", doc.pretty());
}

fn cmd_spec(name: &str, runs: Option<usize>, secs: Option<u64>) {
    let entry =
        experiments::by_name(name).unwrap_or_else(|| die(&format!("unknown experiment '{name}'")));
    let mut budget = Budget::default_fixed();
    if let Some(r) = runs {
        budget.runs = r;
    }
    if let Some(s) = secs {
        budget.sim_secs = s;
    }
    print!("{}", entry.spec(budget).to_json());
}

fn cmd_run(target: &str, runs: Option<usize>, secs: Option<u64>, out_csv: bool) {
    let report = if let Some(entry) = experiments::by_name(target) {
        let mut budget = entry.default_budget();
        if let Some(r) = runs {
            budget.runs = r;
        }
        if let Some(s) = secs {
            budget.sim_secs = s;
        }
        entry
            .run(&entry.spec(budget))
            .unwrap_or_else(|e| die(&format!("{target}: {e}")))
    } else if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target)
            .unwrap_or_else(|e| die(&format!("cannot read '{target}': {e}")));
        let mut spec = ExperimentSpec::from_json(&text)
            .unwrap_or_else(|e| die(&format!("cannot parse '{target}': {e}")));
        if let Some(r) = runs {
            spec.budget.runs = r;
        }
        if let Some(s) = secs {
            spec.budget.sim_secs = s;
        }
        // A spec dumped from the registry keeps its custom presentation
        // (Fig. 3's CDF, Fig. 6's sequence plot, …) by dispatching through
        // its registry entry; unknown names run the generic engine.
        match experiments::by_name(&spec.name) {
            Some(entry) => entry
                .run(&spec)
                .unwrap_or_else(|e| die(&format!("{target}: {e}"))),
            None => Experiment::new(spec)
                .run()
                .unwrap_or_else(|e| die(&format!("{target}: {e}")))
                .report(),
        }
    } else {
        // An unknown name must fail loudly and helpfully: nonzero exit,
        // candidate list on stderr (scripts rely on the exit code).
        eprintln!("remy-cli: '{target}' is neither a registered experiment nor a spec file");
        eprintln!("known experiments:");
        for e in experiments::all() {
            eprintln!("  {}", e.name);
        }
        std::process::exit(2);
    };
    if out_csv {
        report.print_csv();
    } else {
        report.print();
        report.write_csv();
    }
}

fn main() {
    let mut args: Vec<String> = Vec::new();
    let mut runs: Option<usize> = None;
    let mut secs: Option<u64> = None;
    let mut out_csv = false;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        let mut flag = |name: &str| -> Option<String> {
            if a == name {
                Some(
                    raw.next()
                        .unwrap_or_else(|| die(&format!("{name} needs a value"))),
                )
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = flag("--jobs") {
            let n = v.parse().unwrap_or_else(|_| die("--jobs needs a number"));
            remy::evaluator::set_jobs(n);
        } else if let Some(v) = flag("--runs") {
            runs = Some(v.parse().unwrap_or_else(|_| die("--runs needs a number")));
        } else if let Some(v) = flag("--secs") {
            secs = Some(v.parse().unwrap_or_else(|_| die("--secs needs a number")));
        } else if let Some(v) = flag("--out") {
            match v.as_str() {
                "csv" => out_csv = true,
                other => die(&format!("unknown output format '{other}'")),
            }
        } else {
            args.push(a);
        }
    }
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in remy::assets::TABLE_NAMES {
                let t = remy::assets::by_name(name).expect("shipped");
                println!("{name:<12} {:>4} rules  {}", t.len(), t.provenance);
            }
        }
        Some("list-experiments") => {
            cmd_list_experiments(args.get(1).map(String::as_str) == Some("--names"))
        }
        Some("spec") => {
            let n = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            cmd_spec(n, runs, secs);
        }
        Some("topo") => {
            let t = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            cmd_topo(t);
        }
        Some("run") => {
            let t = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            cmd_run(t, runs, secs, out_csv);
        }
        Some("inspect") => {
            let t = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            cmd_inspect(t);
        }
        Some("eval") => {
            let t = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let delta = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(1.0);
            let specimens = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(8);
            let secs = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(15.0);
            cmd_eval(t, delta, specimens, secs);
        }
        Some("compare") => {
            let a = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let b = args.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let runs = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(8);
            let secs = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(20);
            cmd_compare(a, b, runs, secs);
        }
        _ => usage(),
    }
}
