//! `remy-cli` — inspect, evaluate, and compare RemyCC rule tables.
//!
//! ```text
//! remy-cli inspect <table>                        # annotated rule dump
//! remy-cli eval <table> [delta] [specimens] [secs]  # score on the general model
//! remy-cli compare <tableA> <tableB> [runs] [secs]  # head-to-head on Fig. 4
//! remy-cli list                                   # shipped tables
//! ```
//!
//! `<table>` is either a shipped asset name (`delta01`, `delta1`,
//! `delta10`, `onex`, `tenx`, `datacenter`, `coexist`) or a path to a
//! JSON rule table produced by `Remy::design` / `train_remycc`.

use remy_sim::prelude::*;
use std::sync::Arc;

fn load(spec: &str) -> Arc<WhiskerTree> {
    if let Some(t) = remy::assets::by_name(spec) {
        return t;
    }
    let text = std::fs::read_to_string(spec)
        .unwrap_or_else(|e| die(&format!("cannot read '{spec}': {e}")));
    Arc::new(
        WhiskerTree::from_json(&text)
            .unwrap_or_else(|e| die(&format!("cannot parse '{spec}': {e}"))),
    )
}

fn die(msg: &str) -> ! {
    eprintln!("remy-cli: {msg}");
    std::process::exit(2)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  remy-cli list\n  remy-cli inspect <table>\n  \
         remy-cli eval <table> [delta=1] [specimens=8] [secs=15]\n  \
         remy-cli compare <tableA> <tableB> [runs=8] [secs=20]\n\n\
         options:\n  --jobs N   evaluation worker threads (default: REMY_JOBS or all cores);\n             \
         results are identical at any thread count"
    );
    std::process::exit(2)
}

fn cmd_inspect(table_spec: &str) {
    let table = load(table_spec);
    // Annotate with usage from a quick design-range evaluation so the
    // dump shows which rules actually fire.
    let evaluator = Evaluator::new(
        NetworkModel::general(),
        Objective::proportional(1.0),
        EvalConfig {
            specimens: 4,
            sim_secs: 10.0,
        },
    );
    let specimens = evaluator.specimens(1);
    let (_, usage) = evaluator.evaluate(&table, &specimens);
    print!("{}", remy::inspect::report(&table, Some(&usage)));
}

fn cmd_eval(table_spec: &str, delta: f64, specimens: usize, secs: f64) {
    let table = load(table_spec);
    let evaluator = Evaluator::new(
        NetworkModel::general(),
        Objective::proportional(delta),
        EvalConfig {
            specimens,
            sim_secs: secs,
        },
    );
    let sp = evaluator.specimens(7);
    let score = evaluator.score(&table, &sp);
    println!(
        "table {table_spec}: {} rules, objective log(tput) - {delta} log(delay)",
        table.len()
    );
    println!(
        "score over {specimens} general-model specimens x {secs:.0}s: {score:.3}"
    );
}

fn cmd_compare(a_spec: &str, b_spec: &str, runs: usize, secs: u64) {
    let cfg = Workload {
        link: LinkSpec::constant(15.0),
        queue_capacity: 1000,
        n_senders: 8,
        rtt: Ns::from_millis(150),
        traffic: TrafficSpec::fig4(),
        duration: Ns::from_secs(secs),
        runs,
        seed: 12,
    };
    println!(
        "Fig. 4 dumbbell (15 Mbps, 150 ms, n=8), {runs} runs x {secs} s:"
    );
    for (name, spec) in [(a_spec, a_spec), (b_spec, b_spec)] {
        let c = Contender::remy(name.to_string(), load(spec));
        println!("{}", evaluate(&c, &cfg).row());
    }
}

fn main() {
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--jobs" => {
                let n = raw
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a number"));
                remy::evaluator::set_jobs(n);
            }
            s if s.starts_with("--jobs=") => {
                let n = s["--jobs=".len()..]
                    .parse()
                    .unwrap_or_else(|_| die("--jobs needs a number"));
                remy::evaluator::set_jobs(n);
            }
            _ => args.push(a),
        }
    }
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in remy::assets::TABLE_NAMES {
                let t = remy::assets::by_name(name).expect("shipped");
                println!("{name:<12} {:>4} rules  {}", t.len(), t.provenance);
            }
        }
        Some("inspect") => {
            let t = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            cmd_inspect(t);
        }
        Some("eval") => {
            let t = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let delta = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(1.0);
            let specimens = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(8);
            let secs = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(15.0);
            cmd_eval(t, delta, specimens, secs);
        }
        Some("compare") => {
            let a = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let b = args.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let runs = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(8);
            let secs = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(20);
            cmd_compare(a, b, runs, secs);
        }
        _ => usage(),
    }
}
