//! The experiment runner: expand an [`ExperimentSpec`] into (sweep point ×
//! contender × run) cells, fan every simulation through the deterministic
//! parallel engine, and return structured per-cell results.
//!
//! Parallelism follows the evaluator's flattened-matrix design (see
//! `remy::evaluator`): all simulations of all cells form one positional
//! `par_iter`, so load balancing is per-simulation while results are
//! collected by index — outcomes are byte-identical at any `--jobs` /
//! `REMY_JOBS` setting.

use crate::harness::{Contender, Outcome};
use crate::report::{
    outcome_csv_row, outcomes_table, speedup_table, ExperimentReport, OUTCOMES_CSV_HEADER,
};
use crate::spec::{ExperimentSpec, SweepPoint};
use netsim::cc::CongestionControl;
use netsim::metrics::{FlowSummary, PopulationSummary, SimResults};
use netsim::scenario::Scenario;
use netsim::sim::Simulator;
use rayon::prelude::*;

/// One expanded unit of work: a contender at a sweep point, with its
/// fully-materialized scenarios (one per seeded run).
pub struct ExperimentCell {
    /// Index into [`ExperimentSpec::points`].
    pub point_index: usize,
    /// The sweep point's coordinates.
    pub point: SweepPoint,
    /// The runnable contender.
    pub contender: Contender,
    /// One scenario per run, seeds fork-derived from the spec seed.
    pub scenarios: Vec<Scenario>,
}

impl ExperimentSpec {
    /// Expand into cells: every sweep point × every contender, scenarios
    /// materialized. Fails on unresolvable contenders or links rather
    /// than panicking mid-run.
    pub fn expand(&self) -> Result<Vec<ExperimentCell>, String> {
        if self.contenders.is_empty() {
            return Err(format!("spec '{}' has no contenders", self.name));
        }
        let points = self.points();
        let mut cells = Vec::with_capacity(points.len() * self.contenders.len());
        for (pi, point) in points.iter().enumerate() {
            for cs in &self.contenders {
                if self.workload.churn.is_some() && cs.scheme == "xcp" {
                    // XCP's efficiency controller is provisioned for the
                    // persistent population; a churning flow count would
                    // silently mis-estimate spare capacity.
                    return Err(format!(
                        "spec '{}': contender 'xcp' is not supported on a \
                         churn workload",
                        self.name
                    ));
                }
                if self.workload.topology.is_some() && cs.scheme == "xcp" {
                    // The harness attaches a contender's router hook to hop
                    // 0 only; on a multi-hop topology XCP would silently run
                    // at the wrong hop with the wrong rate. Refuse instead
                    // (per-hop hooks exist via `Simulator::with_routers` for
                    // hand-built scenarios).
                    return Err(format!(
                        "spec '{}': contender 'xcp' is not supported on a \
                         topology workload",
                        self.name
                    ));
                }
                let contender = cs.build()?;
                let scenarios = self.scenarios_at(pi, point, &contender)?;
                cells.push(ExperimentCell {
                    point_index: pi,
                    point: point.clone(),
                    contender,
                    scenarios,
                });
            }
        }
        Ok(cells)
    }
}

/// Results of one cell: the per-run, per-sender flow summaries (sender
/// order preserved — RTT-fairness style analyses need the index) plus the
/// pooled [`Outcome`] over active senders.
pub struct CellResult {
    /// Index into [`ExperimentSpec::points`].
    pub point_index: usize,
    /// The sweep point's coordinates.
    pub point: SweepPoint,
    /// Contender display label.
    pub label: String,
    /// `runs[k][i]` is sender `i`'s summary in run `k`.
    pub runs: Vec<Vec<FlowSummary>>,
    /// `populations[k]` is run `k`'s churn-population summary (`None` on
    /// churn-free workloads).
    pub populations: Vec<Option<PopulationSummary>>,
    /// Samples of all active senders pooled across runs, in run order.
    pub outcome: Outcome,
}

/// Executes an [`ExperimentSpec`].
pub struct Experiment {
    /// The spec being run.
    pub spec: ExperimentSpec,
}

impl Experiment {
    /// Wrap a spec.
    pub fn new(spec: ExperimentSpec) -> Experiment {
        Experiment { spec }
    }

    /// Run every cell and pool results. Deterministic at any thread count.
    pub fn run(&self) -> Result<ExperimentResults, String> {
        let cells = self.spec.expand()?;
        // Flatten (cell, run) into one positional work list.
        let jobs: Vec<(usize, usize)> = cells
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| (0..c.scenarios.len()).map(move |si| (ci, si)))
            .collect();
        let per_run: Vec<SimResults> = jobs
            .par_iter()
            .map(|&(ci, si)| {
                let cell = &cells[ci];
                let sc = &cell.scenarios[si];
                let ccs: Vec<Box<dyn CongestionControl>> =
                    (0..sc.n()).map(|_| cell.contender.build_cc()).collect();
                let router = cell.contender.router(&sc.link, sc.mss);
                let mut sim = Simulator::new(sc, ccs, router);
                if sc.churn.is_some() {
                    let contender = cell.contender.clone();
                    sim = sim.with_churn_cc(Box::new(move |_| contender.build_cc()));
                }
                sim.run()
            })
            .collect();
        // Regroup positionally into cells.
        let mut results = Vec::with_capacity(cells.len());
        let mut cursor = 0;
        for cell in &cells {
            let n_runs = cell.scenarios.len();
            let end = cursor + n_runs;
            let runs: Vec<Vec<FlowSummary>> = per_run[cursor..end]
                .iter()
                .map(|r| r.flows.clone())
                .collect();
            let populations: Vec<Option<PopulationSummary>> = per_run[cursor..end]
                .iter()
                .map(|r| r.population.clone())
                .collect();
            cursor += n_runs;
            let mut tput = Vec::new();
            let mut delay = Vec::new();
            let mut rtt = Vec::new();
            for run in &runs {
                for f in run.iter().filter(|f| f.was_active()) {
                    tput.push(f.throughput_mbps);
                    delay.push(f.mean_queue_delay_ms);
                    rtt.push(f.mean_rtt_ms);
                }
            }
            results.push(CellResult {
                point_index: cell.point_index,
                point: cell.point.clone(),
                label: cell.contender.label(),
                runs,
                populations,
                outcome: Outcome::from_samples(cell.contender.label(), tput, delay, rtt),
            });
        }
        Ok(ExperimentResults {
            spec: self.spec.clone(),
            cells: results,
        })
    }
}

/// Structured results of a full experiment: one [`CellResult`] per
/// (sweep point × contender), in expansion order.
pub struct ExperimentResults {
    /// The spec that produced these results.
    pub spec: ExperimentSpec,
    /// Per-cell results.
    pub cells: Vec<CellResult>,
}

impl ExperimentResults {
    /// Number of sweep points.
    pub fn n_points(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.point_index + 1)
            .max()
            .unwrap_or(0)
    }

    /// The outcomes at one sweep point, in contender order.
    pub fn point_outcomes(&self, point_index: usize) -> Vec<&Outcome> {
        self.cells
            .iter()
            .filter(|c| c.point_index == point_index)
            .map(|c| &c.outcome)
            .collect()
    }

    /// The cell of one contender label at one sweep point.
    pub fn cell(&self, point_index: usize, label: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.point_index == point_index && c.label == label)
    }

    /// Render the generic report: a paper-style outcomes table per sweep
    /// point (plus the speedup table when the spec asks for one), and the
    /// outcomes CSV — prefixed with a `point` column when the grid has
    /// more than one point.
    pub fn report(&self) -> ExperimentReport {
        let n_points = self.n_points();
        let swept = n_points > 1;
        let mut text = String::new();
        let mut csv_rows = Vec::new();
        for pi in 0..n_points {
            let outcomes: Vec<Outcome> = self.point_outcomes(pi).into_iter().cloned().collect();
            let point = self
                .cells
                .iter()
                .find(|c| c.point_index == pi)
                .map(|c| c.point.clone())
                .unwrap_or_default();
            let title = if swept {
                format!(
                    "{} [{}] ({} runs x {} s)",
                    self.spec.title,
                    point.label(),
                    self.spec.budget.runs,
                    self.spec.budget.sim_secs
                )
            } else {
                format!(
                    "{} ({} runs x {} s)",
                    self.spec.title, self.spec.budget.runs, self.spec.budget.sim_secs
                )
            };
            text.push_str(&outcomes_table(&title, &outcomes));
            if let Some(reference_label) = &self.spec.speedup_reference {
                if let Some(reference) = outcomes.iter().find(|o| &o.label == reference_label) {
                    // The paper's table compares against the human-designed
                    // schemes only.
                    let baselines: Vec<Outcome> = outcomes
                        .iter()
                        .filter(|o| !o.label.starts_with("RemyCC"))
                        .cloned()
                        .collect();
                    text.push_str(&speedup_table(reference, &baselines));
                }
            }
            for o in &outcomes {
                if swept {
                    csv_rows.push(format!(
                        "{},{}",
                        point.label().replace(", ", ";").replace(',', ";"),
                        outcome_csv_row(o)
                    ));
                } else {
                    csv_rows.push(outcome_csv_row(o));
                }
            }
        }
        let csv_header = if swept {
            format!("point,{OUTCOMES_CSV_HEADER}")
        } else {
            OUTCOMES_CSV_HEADER.to_string()
        };
        ExperimentReport {
            csv_name: self.spec.name.clone(),
            csv_header,
            csv_rows,
            text,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Budget, ContenderSpec, LinkRef, SweepAxis, WorkloadSpec};
    use netsim::time::Ns;
    use netsim::traffic::TrafficSpec;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::new(
            "tiny",
            "tiny dumbbell",
            WorkloadSpec::uniform(
                LinkRef::constant(15.0),
                1000,
                2,
                Ns::from_millis(150),
                TrafficSpec::fig4(),
            ),
            vec![ContenderSpec::new("newreno"), ContenderSpec::new("vegas")],
            Budget {
                runs: 2,
                sim_secs: 5,
            },
            77,
        )
    }

    #[test]
    fn runs_every_cell_and_pools_outcomes() {
        let r = Experiment::new(tiny_spec()).run().expect("run");
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.n_points(), 1);
        for cell in &r.cells {
            assert_eq!(cell.runs.len(), 2, "one entry per seeded run");
            assert_eq!(cell.runs[0].len(), 2, "one summary per sender");
            assert!(cell.outcome.median_throughput_mbps > 0.0);
        }
        assert!(r.cell(0, "NewReno").is_some());
        assert!(r.cell(0, "Vegas").is_some());
        assert!(r.cell(0, "Cubic").is_none());
    }

    #[test]
    fn sweeps_expand_and_report_with_point_column() {
        let spec = tiny_spec().with_sweep(SweepAxis::Senders(vec![1, 3]));
        let r = Experiment::new(spec).run().expect("run");
        assert_eq!(r.n_points(), 2);
        assert_eq!(r.cells.len(), 4);
        assert_eq!(r.cell(1, "NewReno").unwrap().runs[0].len(), 3);
        let rep = r.report();
        assert!(rep.csv_header.starts_with("point,"));
        assert_eq!(rep.csv_rows.len(), 4);
        assert!(rep.csv_rows[0].starts_with("n_senders=1,"));
        assert!(rep.text.contains("[n_senders=3]"));
    }

    #[test]
    fn results_are_deterministic() {
        let a = Experiment::new(tiny_spec()).run().unwrap();
        let b = Experiment::new(tiny_spec()).run().unwrap();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.outcome.delay_samples, y.outcome.delay_samples);
        }
        assert_eq!(a.report().csv_rows, b.report().csv_rows);
    }

    #[test]
    fn speedup_reference_appends_table() {
        let mut spec = tiny_spec();
        spec.speedup_reference = Some("NewReno".to_string());
        let rep = Experiment::new(spec).run().unwrap().report();
        assert!(rep.text.contains("vs protocol"));
        assert!(rep.text.contains("Vegas"));
    }

    #[test]
    fn bad_contender_fails_cleanly() {
        let mut spec = tiny_spec();
        spec.contenders.push(ContenderSpec::new("bbr"));
        assert!(Experiment::new(spec).run().is_err());
    }

    #[test]
    fn churn_workloads_run_and_carry_population_stats() {
        use netsim::scenario::ChurnSpec;
        use netsim::traffic::OnSpec;
        let mut spec = tiny_spec();
        spec.workload = spec.workload.clone().with_churn(ChurnSpec {
            arrivals_per_sec: 100.0,
            size: OnSpec::BoundedPareto {
                xm: 3000.0,
                alpha: 1.2,
                cap_bytes: 150_000.0,
            },
            rtt: Ns::from_millis(20),
        });
        let r = Experiment::new(spec).run().expect("run");
        for cell in &r.cells {
            assert_eq!(cell.populations.len(), cell.runs.len());
            for p in &cell.populations {
                let p = p.as_ref().expect("churn run has population stats");
                assert!(p.spawned > 100, "λ=100/s for 5 s: {} spawned", p.spawned);
                assert_eq!(p.completed + p.live_at_end, p.spawned);
            }
        }
        // Determinism holds through the churn path too.
        let spec2 = {
            let mut s = tiny_spec();
            s.workload = s.workload.clone().with_churn(ChurnSpec {
                arrivals_per_sec: 100.0,
                size: OnSpec::BoundedPareto {
                    xm: 3000.0,
                    alpha: 1.2,
                    cap_bytes: 150_000.0,
                },
                rtt: Ns::from_millis(20),
            });
            s
        };
        let r2 = Experiment::new(spec2).run().expect("run");
        for (a, b) in r.cells.iter().zip(&r2.cells) {
            for (pa, pb) in a.populations.iter().zip(&b.populations) {
                let (pa, pb) = (pa.as_ref().unwrap(), pb.as_ref().unwrap());
                assert_eq!(pa.spawned, pb.spawned);
                assert_eq!(pa.completed, pb.completed);
                assert_eq!(pa.fct_secs.sum().to_bits(), pb.fct_secs.sum().to_bits());
            }
        }
    }

    #[test]
    fn xcp_on_a_churn_workload_is_rejected() {
        use netsim::scenario::ChurnSpec;
        use netsim::traffic::OnSpec;
        let mut spec = tiny_spec();
        spec.workload = spec.workload.clone().with_churn(ChurnSpec {
            arrivals_per_sec: 10.0,
            size: OnSpec::BoundedPareto {
                xm: 3000.0,
                alpha: 1.2,
                cap_bytes: 150_000.0,
            },
            rtt: Ns::from_millis(20),
        });
        spec.contenders.push(ContenderSpec::new("xcp"));
        let err = match spec.expand() {
            Ok(_) => panic!("xcp on churn must be rejected"),
            Err(e) => e,
        };
        assert!(err.contains("churn"), "{err}");
        spec.contenders.pop();
        assert!(spec.expand().is_ok());
    }

    #[test]
    fn xcp_on_a_topology_workload_is_rejected() {
        use crate::spec::{HopRef, TopologySpec};
        use netsim::topology::FlowPath;
        let mut spec = tiny_spec();
        spec.workload = spec.workload.clone().with_topology(TopologySpec::flow_hops(
            vec![HopRef::new(LinkRef::constant(15.0), 1000)],
            (0..2).map(|_| FlowPath::through(vec![0])).collect(),
        ));
        spec.contenders.push(ContenderSpec::new("xcp"));
        let err = match spec.expand() {
            Ok(_) => panic!("xcp on a topology must be rejected"),
            Err(e) => e,
        };
        assert!(err.contains("xcp"), "{err}");
        // Without XCP the same topology spec expands fine.
        spec.contenders.pop();
        assert!(spec.expand().is_ok());
    }
}
