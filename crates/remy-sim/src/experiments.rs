//! The named experiment registry: every figure and table reproduction of
//! the paper's evaluation as a declarative [`ExperimentSpec`] plus (where
//! the paper's presentation needs it) a custom report renderer.
//!
//! `by_name("fig4")` returns the entry; [`run_named`] expands and executes
//! it; `remy-cli run <name>` and the 3-line `bench` binaries both go
//! through exactly this path, so their output is byte-identical. See
//! EXPERIMENTS.md for the catalogue and the budgets used for checked-in
//! numbers.

use crate::experiment::Experiment;
use crate::harness::{runs_from_env, sim_secs_from_env, Contender};
use crate::report::ExperimentReport;
use crate::spec::{
    Budget, ContenderSpec, ExperimentSpec, GraphGenerator, GraphLinkRef, GraphSpec, HopRef,
    LinkEventSpec, LinkRef, SweepAxis, TopologySpec, WorkloadSpec, DEFAULT_SIM_SECS,
};
use netsim::graph::FailoverPolicy;
use netsim::rng::SimRng;
use netsim::scenario::ChurnSpec;
use netsim::scenario::SenderConfig;
use netsim::sim::Simulator;
use netsim::stats::{mean, median, quantile, std_dev, std_err};
use netsim::time::Ns;
use netsim::topology::FlowPath;
use netsim::traffic::{empirical_flow_bytes, OnSpec, TrafficSpec};
use netsim::traffic::{PARETO_ALPHA, PARETO_SHIFT, PARETO_XM};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Contender line-ups and workload templates
// ---------------------------------------------------------------------------

/// The three general-purpose RemyCCs of the evaluation, as specs.
pub fn remy_contender_specs() -> Vec<ContenderSpec> {
    vec![
        ContenderSpec::new("remy:delta01"),
        ContenderSpec::new("remy:delta1"),
        ContenderSpec::new("remy:delta10"),
    ]
}

/// The full Figs. 4–9 line-up: three RemyCCs plus every baseline.
pub fn standard_contender_specs() -> Vec<ContenderSpec> {
    let mut v = remy_contender_specs();
    for name in [
        "newreno",
        "vegas",
        "cubic",
        "compound",
        "cubic+sfqcodel",
        "xcp",
    ] {
        v.push(ContenderSpec::new(name));
    }
    v
}

/// The three general-purpose RemyCCs, built (legacy helper).
pub fn remy_contenders() -> Vec<Contender> {
    remy_contender_specs()
        .iter()
        .map(|c| c.build().expect("shipped tables"))
        .collect()
}

/// The full Figs. 4–9 line-up, built (legacy helper).
pub fn standard_contenders() -> Vec<Contender> {
    standard_contender_specs()
        .iter()
        .map(|c| c.build().expect("shipped tables"))
        .collect()
}

/// The Fig. 4 dumbbell workload (15 Mbps, 150 ms, exp(100 kB)/exp(0.5 s)),
/// parameterized by the sender count.
pub fn dumbbell_workload(n: usize) -> WorkloadSpec {
    WorkloadSpec::uniform(
        LinkRef::constant(15.0),
        1000,
        n,
        Ns::from_millis(150),
        TrafficSpec::fig4(),
    )
}

/// A cellular workload over a named trace (§5.3: RTT 50 ms, same on/off
/// traffic as Fig. 4).
pub fn cellular_workload(trace: &str, n: usize) -> WorkloadSpec {
    WorkloadSpec::uniform(
        LinkRef::named_trace(trace),
        1000,
        n,
        Ns::from_millis(50),
        TrafficSpec::fig4(),
    )
}

/// The parking-lot chain (§ open problems): `hops` 10 Mbps hops in
/// series, 10 ms apart. Senders 0 and 1 cross the whole chain; one cross
/// sender loads each hop individually.
pub fn parking_lot_workload(hops: usize) -> WorkloadSpec {
    let n_long = 2;
    let topo = TopologySpec::flow_hops(
        (0..hops)
            .map(|_| {
                HopRef::new(LinkRef::constant(10.0), 1000).with_prop_delay(Ns::from_millis(10))
            })
            .collect(),
        (0..n_long)
            .map(|_| FlowPath::through((0..hops).collect()))
            .chain((0..hops).map(|h| FlowPath::through(vec![h])))
            .collect(),
    );
    let mut wl = WorkloadSpec::uniform(
        LinkRef::constant(10.0),
        1000,
        n_long + hops,
        Ns::from_millis(150),
        TrafficSpec::fig4(),
    );
    for s in &mut wl.senders[n_long..] {
        s.rtt = Ns::from_millis(100);
    }
    wl.with_topology(topo)
}

/// The `n`-to-1 incast fan-in: per-sender 1 Gbps access hops feed one
/// 100 Mbps aggregation hop with a shallow (64-packet) buffer; senders
/// push 1 MB transfers with short pauses, datacenter-style 4 ms RTTs.
pub fn incast_workload(n: usize) -> WorkloadSpec {
    let mut hops: Vec<HopRef> = (0..n)
        .map(|_| HopRef::new(LinkRef::constant(1000.0), 1000))
        .collect();
    hops.push(HopRef::new(LinkRef::constant(100.0), 64));
    let topo = TopologySpec::flow_hops(
        hops,
        (0..n).map(|i| FlowPath::through(vec![i, n])).collect(),
    );
    WorkloadSpec::uniform(
        LinkRef::constant(100.0),
        64,
        n,
        Ns::from_millis(4),
        TrafficSpec {
            on: OnSpec::ByBytes { mean_bytes: 1e6 },
            off_mean: Ns::from_millis(100),
            start_on: false,
        },
    )
    .with_topology(topo)
}

/// Reverse-path congestion: the two directions of one 10 Mbps link are
/// two hops. Flow 0 sends data east (hop 0) with ACKs returning west
/// (hop 1); flow 1 sends data west with ACKs returning east — each flow's
/// ACKs queue behind the other's data.
pub fn reverse_path_workload() -> WorkloadSpec {
    let topo = TopologySpec::flow_hops(
        vec![
            HopRef::new(LinkRef::constant(10.0), 1000),
            HopRef::new(LinkRef::constant(10.0), 1000),
        ],
        vec![
            FlowPath::through(vec![0]).with_ack_path(vec![1]),
            FlowPath::through(vec![1]).with_ack_path(vec![0]),
        ],
    );
    WorkloadSpec::uniform(
        LinkRef::constant(10.0),
        1000,
        2,
        Ns::from_millis(100),
        TrafficSpec::saturating(),
    )
    .with_topology(topo)
}

// ---------------------------------------------------------------------------
// Registry plumbing
// ---------------------------------------------------------------------------

enum Runner {
    /// Run the spec through [`Experiment`] and render the generic report.
    Generic,
    /// Bespoke presentation (sequence plots, RTT profiles, score sweeps).
    Custom(fn(&ExperimentSpec) -> Result<ExperimentReport, String>),
}

/// One registered figure/table reproduction.
pub struct NamedExperiment {
    /// Registry key (`remy-cli run <name>`).
    pub name: &'static str,
    /// CSV file stem under `target/experiments/` (kept from the original
    /// standalone binaries, so plotting scripts keep working).
    pub csv: &'static str,
    /// One-line description for `remy-cli list-experiments`.
    pub about: &'static str,
    default_budget: fn() -> Budget,
    spec_fn: fn(Budget) -> ExperimentSpec,
    runner: Runner,
}

impl NamedExperiment {
    /// The budget this experiment runs at when none is given: the
    /// `REMY_RUNS`/`REMY_SIM_SECS` environment plus per-experiment
    /// adjustments (the datacenter scales down, Fig. 6 needs ≥ 20 s,
    /// Fig. 3 samples 200 000 flows).
    pub fn default_budget(&self) -> Budget {
        (self.default_budget)()
    }

    /// The experiment's declarative spec at a given budget.
    pub fn spec(&self, budget: Budget) -> ExperimentSpec {
        (self.spec_fn)(budget)
    }

    /// Execute a spec (normally one produced by [`NamedExperiment::spec`],
    /// possibly with an adjusted budget) and render the report.
    pub fn run(&self, spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
        let mut rep = match self.runner {
            Runner::Generic => Experiment::new(spec.clone()).run()?.report(),
            Runner::Custom(f) => f(spec)?,
        };
        rep.csv_name = self.csv.to_string();
        Ok(rep)
    }
}

/// Every registered experiment, in catalogue order.
pub fn all() -> &'static [NamedExperiment] {
    &REGISTRY
}

/// Look an experiment up by registry name.
pub fn by_name(name: &str) -> Option<&'static NamedExperiment> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// Expand and run a named experiment at the given budget.
pub fn run_named(name: &str, budget: Budget) -> Result<ExperimentReport, String> {
    let entry = by_name(name)
        .ok_or_else(|| format!("unknown experiment '{name}' (see `remy-cli list-experiments`)"))?;
    entry.run(&entry.spec(budget))
}

/// Entry point for the 3-line figure binaries: resolve the budget from the
/// environment, run, print the report, write the CSV.
pub fn run_main(name: &str) {
    let entry = by_name(name).unwrap_or_else(|| {
        eprintln!("unknown experiment '{name}'");
        std::process::exit(2);
    });
    match entry.run(&entry.spec(entry.default_budget())) {
        Ok(rep) => {
            rep.print();
            rep.write_csv();
        }
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(1);
        }
    }
}

fn env_budget() -> Budget {
    Budget::from_env()
}

// ---------------------------------------------------------------------------
// The catalogue
// ---------------------------------------------------------------------------

static REGISTRY: [NamedExperiment; 21] = [
    NamedExperiment {
        name: "fig3",
        csv: "fig3_flowcdf",
        about: "empirical flow-length CDF vs the shifted-Pareto fit",
        default_budget: || Budget {
            runs: runs_from_env(200_000),
            sim_secs: sim_secs_from_env(DEFAULT_SIM_SECS),
        },
        spec_fn: spec_fig3,
        runner: Runner::Custom(run_fig3),
    },
    NamedExperiment {
        name: "fig4",
        csv: "fig4_dumbbell8",
        about: "throughput-delay, dumbbell 15 Mbps / 150 ms / n=8",
        default_budget: env_budget,
        spec_fn: spec_fig4,
        runner: Runner::Generic,
    },
    NamedExperiment {
        name: "fig5",
        csv: "fig5_dumbbell12",
        about: "dumbbell n=12 with ICSI heavy-tailed flow lengths",
        default_budget: env_budget,
        spec_fn: spec_fig5,
        runner: Runner::Generic,
    },
    NamedExperiment {
        name: "fig6",
        csv: "fig6_dynamics",
        about: "sequence plot: RemyCC reacting to a departing competitor (single run)",
        default_budget: || {
            let b = Budget::from_env();
            // One scenario is the whole experiment; the default duration
            // leaves room for the half-time departure and the reaction
            // windows. An explicit --secs is honored as-is.
            Budget {
                runs: 1,
                sim_secs: b.sim_secs.max(20),
            }
        },
        spec_fn: spec_fig6,
        runner: Runner::Custom(run_fig6),
    },
    NamedExperiment {
        name: "fig7",
        csv: "fig7_lte4",
        about: "Verizon-like LTE downlink, n=4",
        default_budget: env_budget,
        spec_fn: spec_fig7,
        runner: Runner::Custom(run_lte_trace),
    },
    NamedExperiment {
        name: "fig8",
        csv: "fig8_lte8",
        about: "Verizon-like LTE downlink, n=8",
        default_budget: env_budget,
        spec_fn: spec_fig8,
        runner: Runner::Custom(run_lte_trace),
    },
    NamedExperiment {
        name: "fig9",
        csv: "fig9_att4",
        about: "AT&T-like LTE downlink, n=4",
        default_budget: env_budget,
        spec_fn: spec_fig9,
        runner: Runner::Custom(run_lte_trace),
    },
    NamedExperiment {
        name: "fig10",
        csv: "fig10_rtt_fairness",
        about: "RTT fairness: normalized share at 50/100/150/200 ms",
        default_budget: env_budget,
        spec_fn: spec_fig10,
        runner: Runner::Custom(run_fig10),
    },
    NamedExperiment {
        name: "fig11",
        csv: "fig11_prior",
        about: "value of prior knowledge: 1x/10x RemyCCs across link speeds",
        default_budget: env_budget,
        spec_fn: spec_fig11,
        runner: Runner::Custom(run_fig11),
    },
    NamedExperiment {
        name: "table1_dumbbell",
        csv: "table1_dumbbell",
        about: "§1 headline speedups on the dumbbell",
        default_budget: env_budget,
        spec_fn: spec_table1_dumbbell,
        runner: Runner::Generic,
    },
    NamedExperiment {
        name: "table1_cellular",
        csv: "table1_cellular",
        about: "§1 headline speedups on the Verizon-like LTE link",
        default_budget: env_budget,
        spec_fn: spec_table1_cellular,
        runner: Runner::Custom(run_lte_trace),
    },
    NamedExperiment {
        name: "table_competing",
        csv: "table_competing",
        about: "§5.6 incremental deployment: RemyCC vs Compound/Cubic head-to-head",
        default_budget: || {
            let b = Budget::from_env();
            Budget {
                runs: b.runs,
                sim_secs: b.sim_secs.max(30),
            }
        },
        spec_fn: spec_table_competing,
        runner: Runner::Custom(run_table_competing),
    },
    NamedExperiment {
        name: "table_datacenter",
        csv: "table_datacenter",
        about: "§5.5 datacenter: DCTCP+ECN vs RemyCC over DropTail",
        default_budget: || Budget::from_env().scaled(2, 2),
        spec_fn: spec_table_datacenter,
        runner: Runner::Custom(run_table_datacenter),
    },
    NamedExperiment {
        name: "ablation_signals",
        csv: "ablation_signals",
        about: "mask each RemyCC congestion signal and measure the cost",
        default_budget: env_budget,
        spec_fn: spec_ablation_signals,
        runner: Runner::Custom(run_ablation_signals),
    },
    NamedExperiment {
        name: "ablation_loss",
        csv: "ablation_loss",
        about: "robustness to stochastic non-congestive loss",
        default_budget: env_budget,
        spec_fn: spec_ablation_loss,
        runner: Runner::Custom(run_ablation_loss),
    },
    NamedExperiment {
        name: "parking_lot3",
        csv: "parking_lot3",
        about: "3-hop parking lot: end-to-end flows vs per-hop cross traffic",
        default_budget: env_budget,
        spec_fn: spec_parking_lot3,
        runner: Runner::Custom(run_parking_lot3),
    },
    NamedExperiment {
        name: "incast16",
        csv: "incast16",
        about: "16-to-1 datacenter incast through a shallow aggregation buffer",
        default_budget: || Budget::from_env().scaled(2, 2),
        spec_fn: spec_incast16,
        runner: Runner::Custom(run_incast16),
    },
    NamedExperiment {
        name: "reverse_path",
        csv: "reverse_path",
        about: "data and ACKs contending on opposite directions of one link",
        default_budget: || {
            let b = Budget::from_env();
            // Saturating senders draw no randomness, so extra seeded runs
            // repeat the same trajectory; two runs double-check that.
            Budget {
                runs: b.runs.min(2),
                sim_secs: b.sim_secs,
            }
        },
        spec_fn: spec_reverse_path,
        runner: Runner::Custom(run_reverse_path),
    },
    NamedExperiment {
        name: "web_churn",
        csv: "web_churn",
        about: "Poisson arrivals of heavy-tailed web transfers under two persistent senders",
        default_budget: env_budget,
        spec_fn: spec_web_churn,
        runner: Runner::Custom(run_web_churn),
    },
    NamedExperiment {
        name: "failover_chain",
        csv: "failover_chain",
        about: "link failure mid-run: shortest-path reroute onto a slower backup path",
        default_budget: || {
            let b = Budget::from_env();
            // Saturating senders draw no randomness; two runs double-check.
            Budget {
                runs: b.runs.min(2),
                sim_secs: b.sim_secs,
            }
        },
        spec_fn: spec_failover_chain,
        runner: Runner::Custom(run_failover_chain),
    },
    NamedExperiment {
        name: "fattree_k4_crosstraffic",
        csv: "fattree_k4_crosstraffic",
        about: "fat-tree k=4 with cross-pod and intra-pod edge-to-edge flows",
        default_budget: || {
            let b = Budget::from_env();
            Budget {
                runs: b.runs.min(2),
                sim_secs: b.sim_secs,
            }
        },
        spec_fn: spec_fattree_k4_crosstraffic,
        runner: Runner::Generic,
    },
];

// ---------------------------------------------------------------------------
// Specs
// ---------------------------------------------------------------------------

fn spec_fig3(budget: Budget) -> ExperimentSpec {
    // The spec's workload documents the traffic model whose flow-length
    // distribution Fig. 3 samples (the Fig. 5 senders); the budget's
    // `runs` is the sample count.
    ExperimentSpec::new(
        "fig3",
        "Fig. 3 — flow length CDF vs Pareto(Xm=147, alpha=0.5) fit",
        WorkloadSpec::uniform(
            LinkRef::constant(15.0),
            1000,
            1,
            Ns::from_millis(150),
            TrafficSpec {
                on: OnSpec::empirical(),
                off_mean: Ns::from_millis(200),
                start_on: false,
            },
        ),
        vec![ContenderSpec::new("newreno")],
        budget,
        333,
    )
}

fn spec_fig4(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "fig4",
        "Fig. 4 — dumbbell 15 Mbps, RTT 150 ms, n=8",
        dumbbell_workload(8),
        standard_contender_specs(),
        budget,
        4001,
    )
}

fn spec_fig5(budget: Budget) -> ExperimentSpec {
    let mut wl = dumbbell_workload(12);
    for s in &mut wl.senders {
        s.traffic = TrafficSpec {
            on: OnSpec::empirical(),
            off_mean: Ns::from_millis(200),
            start_on: false,
        };
    }
    ExperimentSpec::new(
        "fig5",
        "Fig. 5 — dumbbell 15 Mbps, n=12, ICSI flow lengths",
        wl,
        standard_contender_specs(),
        budget,
        5001,
    )
}

fn spec_fig6(budget: Budget) -> ExperimentSpec {
    let secs = budget.sim_secs;
    let depart_at = Ns::from_secs(secs / 2);
    let mut wl = WorkloadSpec::uniform(
        LinkRef::constant(15.0),
        1000,
        2,
        Ns::from_millis(150),
        TrafficSpec::saturating(),
    );
    // Flow 1 is on for exactly the first half of the run, then leaves.
    wl.senders[1].traffic = TrafficSpec {
        on: OnSpec::ByTimeFixed {
            duration: depart_at,
        },
        off_mean: Ns::from_secs(10_000), // never comes back
        start_on: true,
    };
    wl.record_deliveries = true;
    ExperimentSpec::new(
        "fig6",
        "Fig. 6 — sequence plot data (flow 0)",
        wl,
        vec![ContenderSpec::new("remy:delta1")],
        Budget {
            runs: 1,
            sim_secs: secs,
        },
        6,
    )
}

fn spec_fig7(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "fig7",
        "Fig. 7 — Verizon-like LTE, n=4",
        cellular_workload("verizon-like", 4),
        standard_contender_specs(),
        budget,
        7001,
    )
}

fn spec_fig8(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "fig8",
        "Fig. 8 — Verizon-like LTE, n=8",
        cellular_workload("verizon-like", 8),
        standard_contender_specs(),
        budget,
        8001,
    )
}

fn spec_fig9(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "fig9",
        "Fig. 9 — AT&T-like LTE, n=4",
        cellular_workload("att-like", 4),
        standard_contender_specs(),
        budget,
        9001,
    )
}

/// The four propagation RTTs of the Fig. 10 grid, milliseconds.
const FIG10_RTTS_MS: [u64; 4] = [50, 100, 150, 200];

fn spec_fig10(budget: Budget) -> ExperimentSpec {
    let wl = WorkloadSpec {
        link: LinkRef::constant(10.0),
        queue_capacity: 1000,
        senders: FIG10_RTTS_MS
            .iter()
            .map(|&ms| SenderConfig {
                rtt: Ns::from_millis(ms),
                traffic: TrafficSpec {
                    on: OnSpec::empirical(),
                    off_mean: Ns::from_millis(200),
                    start_on: false,
                },
            })
            .collect(),
        record_deliveries: false,
        topology: None,
        churn: None,
    };
    ExperimentSpec::new(
        "fig10",
        "Fig. 10 — normalized throughput share vs RTT",
        wl,
        vec![
            ContenderSpec::new("cubic+sfqcodel"),
            ContenderSpec::new("remy:delta01"),
            ContenderSpec::new("remy:delta1"),
            ContenderSpec::new("remy:delta10"),
        ],
        budget,
        10_101,
    )
}

/// The Fig. 11 link-speed grid, Mbps (10× design range is 4.7–47).
const FIG11_SPEEDS: [f64; 9] = [2.5, 4.7, 7.0, 10.0, 15.0, 22.0, 33.0, 47.0, 70.0];

fn spec_fig11(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "fig11",
        "Fig. 11 — log(norm tput) - log(norm delay) vs link speed",
        WorkloadSpec::uniform(
            LinkRef::constant(15.0),
            1000,
            2,
            Ns::from_millis(150),
            TrafficSpec::design_default(),
        ),
        vec![
            ContenderSpec::new("remy:onex"),
            ContenderSpec::new("remy:tenx"),
            ContenderSpec::new("cubic+sfqcodel"),
        ],
        budget,
        11_000,
    )
    .with_sweep(SweepAxis::LinkMbps(FIG11_SPEEDS.to_vec()))
}

fn spec_table1_dumbbell(budget: Budget) -> ExperimentSpec {
    let mut spec = spec_fig4(budget);
    spec.name = "table1_dumbbell".to_string();
    spec.title = "Table §1-a — dumbbell 15 Mbps, RTT 150 ms, n=8".to_string();
    spec.with_speedup_reference("RemyCC d=0.1")
}

fn spec_table1_cellular(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "table1_cellular",
        "Table §1-b — Verizon-like LTE, n=4",
        cellular_workload("verizon-like", 4),
        standard_contender_specs(),
        budget,
        4242,
    )
    .with_speedup_reference("RemyCC d=0.1")
}

fn spec_table_competing(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "table_competing",
        "§5.6 — RemyCC head-to-head against buffer-filling schemes",
        WorkloadSpec::uniform(
            LinkRef::constant(15.0),
            1000,
            2,
            Ns::from_millis(150),
            TrafficSpec {
                on: OnSpec::empirical(),
                off_mean: Ns::from_millis(200),
                start_on: false,
            },
        ),
        vec![
            ContenderSpec::new("remy:coexist"),
            ContenderSpec::new("compound"),
            ContenderSpec::new("cubic"),
        ],
        budget,
        56_100,
    )
    .with_sweep(SweepAxis::OffMeanMs(vec![200, 100, 10]))
}

fn spec_table_datacenter(budget: Budget) -> ExperimentSpec {
    let mbps: f64 = std::env::var("REMY_DC_MBPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500.0);
    let scale = mbps / 10_000.0;
    let n = 32;
    let k = ((65.0 * scale).round() as usize).max(4);
    ExperimentSpec::new(
        "table_datacenter",
        format!(
            "§5.5 — datacenter, {mbps} Mbps, RTT 4 ms, n={n}, exp({:.1} MB) transfers",
            20.0 * scale
        ),
        WorkloadSpec::uniform(
            LinkRef::constant(mbps),
            1000,
            n,
            Ns::from_millis(4),
            TrafficSpec {
                on: OnSpec::ByBytes {
                    mean_bytes: 20e6 * scale,
                },
                off_mean: Ns::from_millis(100),
                start_on: false,
            },
        ),
        vec![
            ContenderSpec::new(format!("dctcp:{k}")),
            ContenderSpec::labeled("remy:datacenter", "RemyCC (DropTail)"),
        ],
        budget,
        5500,
    )
}

fn spec_ablation_signals(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "ablation_signals",
        "Ablation — RemyCC d=1 memory signals, dumbbell n=8",
        dumbbell_workload(8),
        vec![
            ContenderSpec::labeled("remy:delta1:mask=111", "all signals"),
            ContenderSpec::labeled("remy:delta1:mask=011", "no ack_ewma"),
            ContenderSpec::labeled("remy:delta1:mask=101", "no send_ewma"),
            ContenderSpec::labeled("remy:delta1:mask=110", "no rtt_ratio"),
            ContenderSpec::labeled("remy:delta1:mask=000", "blind"),
        ],
        budget,
        88_000,
    )
}

/// The stochastic-loss grid of the loss ablation.
const LOSS_RATES: [f64; 5] = [0.0, 0.001, 0.005, 0.01, 0.03];

fn spec_ablation_loss(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "ablation_loss",
        "Ablation — median per-sender tput (Mbps) vs stochastic loss, dumbbell n=8",
        dumbbell_workload(8),
        vec![
            ContenderSpec::new("remy:delta01"),
            ContenderSpec::new("newreno"),
            ContenderSpec::new("cubic"),
        ],
        budget,
        77_000,
    )
    .with_sweep(SweepAxis::LossRate(LOSS_RATES.to_vec()))
}

fn spec_parking_lot3(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "parking_lot3",
        "Parking lot — 3 x 10 Mbps hops, 2 end-to-end flows + 1 cross flow per hop",
        parking_lot_workload(3),
        vec![
            ContenderSpec::new("remy:delta1"),
            ContenderSpec::new("newreno"),
            ContenderSpec::new("cubic"),
        ],
        budget,
        31_001,
    )
}

fn spec_incast16(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "incast16",
        "Incast — 16-to-1 fan-in, 100 Mbps aggregation, 64-packet buffer, RTT 4 ms",
        incast_workload(16),
        vec![
            ContenderSpec::labeled("remy:datacenter", "RemyCC (DropTail)"),
            ContenderSpec::new("dctcp:8"),
            ContenderSpec::new("newreno"),
        ],
        budget,
        16_001,
    )
}

fn spec_reverse_path(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "reverse_path",
        "Reverse path — data and ACKs contending on opposite directions of a 10 Mbps link",
        reverse_path_workload(),
        vec![
            ContenderSpec::new("remy:delta1"),
            ContenderSpec::new("newreno"),
            ContenderSpec::new("cubic"),
        ],
        budget,
        27_001,
    )
}

/// The web-churn workload: a fast shared bottleneck with two persistent
/// buffer-filling senders, plus Poisson arrivals (λ = 2000 flows/s) of
/// bounded-Pareto web transfers — ≥ 10 000 dynamic flows per run even at
/// the CI smoke budget (2 runs × 5 s), ~60 000 at the default budget.
pub fn web_churn_workload() -> WorkloadSpec {
    WorkloadSpec::uniform(
        LinkRef::constant(1000.0),
        1000,
        2,
        Ns::from_millis(50),
        TrafficSpec::saturating(),
    )
    .with_churn(ChurnSpec {
        arrivals_per_sec: 2000.0,
        size: OnSpec::BoundedPareto {
            xm: 4500.0,
            alpha: 1.2,
            cap_bytes: 1_500_000.0,
        },
        rtt: Ns::from_millis(20),
    })
}

fn spec_web_churn(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "web_churn",
        "Web churn — Poisson(2000/s) bounded-Pareto transfers vs two persistent senders, 1 Gbps",
        web_churn_workload(),
        vec![
            ContenderSpec::new("newreno"),
            ContenderSpec::new("cubic"),
            ContenderSpec::new("remy:delta1"),
        ],
        budget,
        70_001,
    )
}

/// The failover-chain workload: a 3-segment primary chain a—b—c—d
/// (5 ms per segment, weight 1) and a slower 2-segment detour a—e—d
/// (20 ms per segment, weight 2), all duplex 10 Mbps links. Two
/// saturating flows a→d ride the primary until the b↔c segment fails
/// at `fail_at`; shortest-path recomputation then shifts both flows —
/// and their ACKs — onto the detour, and the RTT steps up by the extra
/// propagation. The buffers are kept shallow (6 packets ≈ 7 ms at
/// 10 Mbps) so the 20 ms propagation step dominates the RTT and stays
/// visible under any contender's queue occupancy.
pub fn failover_chain_workload(fail_at: Ns) -> WorkloadSpec {
    let wire = |from: &str, to: &str, ms: u64, weight: u64| GraphLinkRef {
        from: from.to_string(),
        to: to.to_string(),
        link: LinkRef::constant(10.0),
        queue_capacity: 6,
        prop_delay: Ns::from_millis(ms),
        weight,
    };
    let duplex = |a: &str, b: &str, ms: u64, w: u64| vec![wire(a, b, ms, w), wire(b, a, ms, w)];
    let mut links = Vec::new();
    links.extend(duplex("a", "b", 5, 1));
    links.extend(duplex("b", "c", 5, 1));
    links.extend(duplex("c", "d", 5, 1));
    links.extend(duplex("a", "e", 20, 2));
    links.extend(duplex("e", "d", 20, 2));
    let down = |from: &str, to: &str| LinkEventSpec {
        at: fail_at,
        from: from.to_string(),
        to: to.to_string(),
        up: false,
    };
    let graph = GraphSpec {
        generator: GraphGenerator::Explicit {
            routers: ["a", "b", "c", "d", "e"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            links,
        },
        flows: vec![("a".into(), "d".into()), ("a".into(), "d".into())],
        // Both directions of the b↔c segment fail together, so the
        // forward path and the ACK path reroute at the same instant.
        events: vec![down("b", "c"), down("c", "b")],
        policy: FailoverPolicy::Reroute,
    };
    WorkloadSpec::uniform(
        LinkRef::constant(10.0),
        6,
        2,
        Ns::from_millis(20),
        TrafficSpec::saturating(),
    )
    .with_topology(TopologySpec::Graph(graph))
}

fn spec_failover_chain(budget: Budget) -> ExperimentSpec {
    // The failure lands mid-run at every budget (same derivation as
    // Fig. 6's departure time), so pre- and post-failure windows both
    // carry traffic.
    let fail_secs = (budget.sim_secs / 2).max(1);
    ExperimentSpec::new(
        "failover_chain",
        format!(
            "Failover — 3-hop chain, primary b-c segment fails at t={fail_secs}s, \
             reroute onto the 40 ms backup path"
        ),
        failover_chain_workload(Ns::from_secs(fail_secs)),
        vec![
            ContenderSpec::new("remy:delta1"),
            ContenderSpec::new("cubic"),
        ],
        budget,
        91_001,
    )
}

/// The fat-tree cross-traffic workload: the canonical k=4 switch-level
/// fabric (20 routers, 64 directed 50 Mbps links) carrying six
/// saturating edge-to-edge flows — four cross-pod (two hops up to the
/// core and two back down) and two intra-pod (via the shared
/// aggregation layer), so core and aggregation links see overlapping
/// traffic from different pods.
pub fn fattree_crosstraffic_workload() -> WorkloadSpec {
    let graph = GraphSpec {
        generator: GraphGenerator::FatTreeK4 {
            link: LinkRef::constant(50.0),
            queue_capacity: 64,
            prop_delay: Ns::from_micros(100),
        },
        flows: [
            ("pod0_edge0", "pod1_edge0"),
            ("pod1_edge1", "pod2_edge1"),
            ("pod2_edge0", "pod3_edge0"),
            ("pod0_edge1", "pod3_edge1"),
            ("pod0_edge0", "pod0_edge1"),
            ("pod2_edge1", "pod2_edge0"),
        ]
        .iter()
        .map(|(s, d)| (s.to_string(), d.to_string()))
        .collect(),
        events: vec![],
        policy: FailoverPolicy::Reroute,
    };
    WorkloadSpec::uniform(
        LinkRef::constant(50.0),
        64,
        6,
        Ns::from_millis(1),
        TrafficSpec::saturating(),
    )
    .with_topology(TopologySpec::Graph(graph))
}

fn spec_fattree_k4_crosstraffic(budget: Budget) -> ExperimentSpec {
    ExperimentSpec::new(
        "fattree_k4_crosstraffic",
        "Fat-tree k=4 — six edge-to-edge flows, cross-pod and intra-pod, 50 Mbps fabric",
        fattree_crosstraffic_workload(),
        vec![
            ContenderSpec::labeled("remy:datacenter", "RemyCC (DropTail)"),
            ContenderSpec::new("dctcp:8"),
            ContenderSpec::new("cubic"),
        ],
        budget,
        84_001,
    )
}

// ---------------------------------------------------------------------------
// Custom runners
// ---------------------------------------------------------------------------

fn run_fig3(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let n = spec.budget.runs;
    let mut rng = SimRng::new(spec.seed);
    // Draw raw (pre-16 kB-load) lengths to compare with the paper's fit.
    let mut raw: Vec<f64> = (0..n)
        .map(|_| (rng.pareto(PARETO_XM, PARETO_ALPHA) - PARETO_SHIFT).max(1.0))
        .collect();
    raw.sort_by(f64::total_cmp);

    let mut text = String::new();
    let _ = writeln!(text, "== {} ==", spec.title);
    let _ = writeln!(
        text,
        "{:>12} {:>12} {:>12}",
        "bytes", "empirical", "closed form"
    );
    let mut rows = Vec::new();
    for exp in 0..=7 {
        for mant in [1.0, 3.0] {
            let x = mant * 10f64.powi(exp);
            if !(100.0..=1e7).contains(&x) {
                continue;
            }
            let idx = raw.partition_point(|&v| v <= x);
            let emp = idx as f64 / raw.len() as f64;
            // CDF of the shifted Pareto: P(X ≤ x) = 1 − (Xm/(x+40))^α.
            let cf = if x + PARETO_SHIFT < PARETO_XM {
                0.0
            } else {
                1.0 - (PARETO_XM / (x + PARETO_SHIFT)).powf(PARETO_ALPHA)
            };
            let _ = writeln!(text, "{x:>12.0} {emp:>12.4} {cf:>12.4}");
            rows.push(format!("{x},{emp},{cf}"));
        }
    }
    // Sanity: with the evaluation's +16 kB loading term, flows are at
    // least 16 kB.
    let min_loaded = (0..1000)
        .map(|_| empirical_flow_bytes(&mut rng, u64::MAX))
        .min()
        .unwrap();
    let _ = writeln!(
        text,
        "\nminimum loaded flow (with +16 kB term): {min_loaded} bytes"
    );
    let _ = writeln!(
        text,
        "paper: distribution \"suggest[s] that the underlying distribution does not have finite mean\""
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "bytes,empirical_cdf,closed_form_cdf".to_string(),
        csv_rows: rows,
        text,
    })
}

fn run_fig6(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let cells = spec.expand()?;
    let cell = &cells[0];
    let scenario = &cell.scenarios[0];
    let ccs: Vec<Box<dyn netsim::cc::CongestionControl>> = (0..scenario.n())
        .map(|_| cell.contender.build_cc())
        .collect();
    let results = Simulator::new(scenario, ccs, None).run();

    // Find the instant flow 1's deliveries stop (its actual departure).
    let flow1_last = results
        .deliveries
        .iter()
        .filter(|d| d.flow == 1)
        .map(|d| d.at)
        .max()
        .unwrap_or(Ns::ZERO);

    // Delivered-sequence series for flow 0, sampled every 250 ms.
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {}, competitor departs ~{flow1_last} ==",
        spec.title
    );
    let _ = writeln!(text, "{:>8} {:>10}", "t (s)", "seq");
    let mut rows = Vec::new();
    let step = Ns::from_millis(250);
    let mut t = Ns::ZERO;
    let mut idx = 0;
    let flow0: Vec<_> = results.deliveries.iter().filter(|d| d.flow == 0).collect();
    while t <= scenario.duration {
        while idx < flow0.len() && flow0[idx].at <= t {
            idx += 1;
        }
        let seq = if idx == 0 { 0 } else { flow0[idx - 1].seq };
        let _ = writeln!(text, "{:>8.2} {:>10}", t.as_secs_f64(), seq);
        rows.push(format!("{},{}", t.as_secs_f64(), seq));
        t += step;
    }

    // Rate before vs. after the departure (1.5 s windows, skipping two
    // RTTs of reaction time).
    let rate_in = |from: Ns, to: Ns| {
        flow0.iter().filter(|d| d.at >= from && d.at < to).count() as f64
            / (to - from).as_secs_f64()
    };
    let win = Ns::from_millis(1500);
    let before = rate_in(flow1_last.saturating_sub(win), flow1_last);
    let react = flow1_last + Ns::from_millis(300);
    let after = rate_in(react, react + win);
    let _ = writeln!(
        text,
        "\nflow 0 delivery rate: {before:.0} pkt/s before departure, {after:.0} pkt/s after"
    );
    let _ = writeln!(
        text,
        "ratio: {:.2}x (paper: ~2x within about one RTT)",
        after / before.max(1.0)
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "t_secs,delivered_seq".to_string(),
        csv_rows: rows,
        text,
    })
}

/// Generic engine run plus a trace-utilization column for the cellular
/// experiments: on a trace-driven link, utilization must be measured
/// against the capacity the schedule *actually delivered* over the
/// simulated window (`LinkSpec::delivered_capacity_bits`), not a nominal
/// constant rate — an LTE trace's instantaneous rate swings far from its
/// long-term average, so the nominal denominator can be off severalfold
/// over short windows.
fn run_lte_trace(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let mut rep = results.report();
    let link = spec.workload.link.resolve()?;
    // Take the MSS from an actually-expanded scenario rather than
    // duplicating the spec layer's default here.
    let mss = spec
        .workload
        .scenario(
            netsim::queue::QueueSpec::DropTail {
                capacity: spec.workload.queue_capacity,
            },
            Ns::from_secs(spec.budget.sim_secs),
            spec.seed,
        )?
        .mss;
    let window = Ns::from_secs(spec.budget.sim_secs);
    let utils: Vec<f64> = results
        .cells
        .iter()
        .map(|cell| {
            let per_run: Vec<f64> = cell
                .runs
                .iter()
                .map(|run| {
                    let r = netsim::metrics::SimResults {
                        flows: run.clone(),
                        duration: window,
                        ..Default::default()
                    };
                    r.utilization_of(&link, mss)
                })
                .collect();
            mean(&per_run)
        })
        .collect();
    assert_eq!(rep.csv_rows.len(), utils.len(), "one CSV row per cell");
    rep.csv_header.push_str(",mean_utilization");
    for (row, u) in rep.csv_rows.iter_mut().zip(&utils) {
        row.push_str(&format!(",{u}"));
    }
    let _ = writeln!(
        rep.text,
        "\nutilization of delivered trace capacity ({}):",
        link.label()
    );
    for (cell, u) in results.cells.iter().zip(&utils) {
        let _ = writeln!(rep.text, "  {:<16} {:>5.1}%", cell.label, u * 100.0);
    }
    Ok(rep)
}

fn run_fig10(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let rtt_ms: Vec<u64> = spec
        .workload
        .senders
        .iter()
        .map(|s| s.rtt.0 / 1_000_000)
        .collect();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = write!(text, "{:<16}", "scheme");
    for ms in &rtt_ms {
        let _ = write!(text, " {:>14}", format!("{ms} ms"));
    }
    let _ = writeln!(text);
    let mut rows = Vec::new();
    for cell in &results.cells {
        // Per-sender (= per-RTT) mean throughput and standard error.
        let prof: Vec<(f64, f64)> = (0..rtt_ms.len())
            .map(|i| {
                let samples: Vec<f64> = cell
                    .runs
                    .iter()
                    .filter(|run| run[i].was_active())
                    .map(|run| run[i].throughput_mbps)
                    .collect();
                (mean(&samples), std_err(&samples))
            })
            .collect();
        let best = prof
            .iter()
            .map(|&(m, _)| m)
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let _ = write!(text, "{:<16}", cell.label);
        for &(m, se) in &prof {
            let _ = write!(text, " {:>14}", format!("{:.3}±{:.3}", m / best, se / best));
        }
        let _ = writeln!(text);
        let worst_share = prof[rtt_ms.len() - 1].0 / best;
        let _ = writeln!(
            text,
            "  -> {} ms flow keeps {worst_share:.2} of the best share",
            rtt_ms[rtt_ms.len() - 1]
        );
        rows.push(format!(
            "{},{}",
            cell.label,
            prof.iter()
                .map(|&(m, se)| format!("{},{}", m / best, se / best))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    let header = format!(
        "scheme,{}",
        rtt_ms
            .iter()
            .map(|ms| format!("share{ms},se{ms}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: header,
        csv_rows: rows,
        text,
    })
}

fn run_fig11(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let speeds: Vec<f64> = match spec.sweeps.first() {
        Some(SweepAxis::LinkMbps(v)) => v.clone(),
        _ => return Err("fig11 spec needs a link_mbps sweep".to_string()),
    };
    // Contender labels in spec order, from the already-run cells.
    let labels: Vec<String> = results
        .cells
        .iter()
        .filter(|c| c.point_index == 0)
        .map(|c| c.label.clone())
        .collect();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = write!(text, "{:<16}", "scheme");
    for s in &speeds {
        let _ = write!(text, " {s:>7}");
    }
    let _ = writeln!(text, "  (Mbps; 10x design range is 4.7-47)");
    let mut rows = Vec::new();
    for label in &labels {
        let _ = write!(text, "{label:<16}");
        let mut cells_csv = Vec::new();
        for (pi, &mbps) in speeds.iter().enumerate() {
            let cell = results
                .cell(pi, label)
                .ok_or_else(|| format!("missing cell {label}@{mbps}"))?;
            // Per-sender mean of log(norm tput) − log(norm delay), with
            // normalized throughput = share of the fair rate (link/2) and
            // delay = mean RTT over the 150 ms propagation floor.
            let fair = mbps / 2.0;
            let o = &cell.outcome;
            let mut total = 0.0;
            let mut count = 0usize;
            for (t, r) in o.throughput_samples.iter().zip(&o.rtt_samples) {
                total += (t / fair).max(1e-6).ln() - (r / 150.0).max(1e-6).ln();
                count += 1;
            }
            let v = total / count.max(1) as f64;
            let _ = write!(text, " {v:>7.2}");
            cells_csv.push(format!("{v}"));
        }
        let _ = writeln!(text);
        rows.push(format!("{},{}", label, cells_csv.join(",")));
    }
    let header = format!(
        "scheme,{}",
        speeds
            .iter()
            .map(|s| format!("mbps_{s}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: header,
        csv_rows: rows,
        text,
    })
}

struct HeadToHead {
    remy_mean: f64,
    remy_sd: f64,
    rival_mean: f64,
    rival_sd: f64,
}

/// One §5.6 head-to-head: the coexistence RemyCC and a rival scheme share
/// one dumbbell. `point_stream` seeds the run set (common random numbers
/// across rivals at the same stream).
fn head_to_head(
    spec: &ExperimentSpec,
    rival: &Contender,
    traffic: &TrafficSpec,
    point_stream: u64,
) -> Result<HeadToHead, String> {
    let remy = spec.contenders[0].build()?;
    let mut wl = spec.workload.clone();
    for s in &mut wl.senders {
        s.traffic = traffic.clone();
    }
    let point_seed = SimRng::split_seed(spec.seed, point_stream);
    let mut remy_t = Vec::new();
    let mut rival_t = Vec::new();
    for k in 0..spec.budget.runs {
        let run_seed = SimRng::split_seed(point_seed, k as u64);
        let scenario = wl.scenario(
            netsim::queue::QueueSpec::DropTail {
                capacity: wl.queue_capacity,
            },
            spec.budget.duration(),
            run_seed,
        )?;
        let ccs = vec![remy.build_cc(), rival.build_cc()];
        let r = Simulator::new(&scenario, ccs, None).run();
        if r.flows[0].was_active() {
            remy_t.push(r.flows[0].throughput_mbps);
        }
        if r.flows[1].was_active() {
            rival_t.push(r.flows[1].throughput_mbps);
        }
    }
    Ok(HeadToHead {
        remy_mean: mean(&remy_t),
        remy_sd: std_dev(&remy_t),
        rival_mean: mean(&rival_t),
        rival_sd: std_dev(&rival_t),
    })
}

fn run_table_competing(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let compound = spec.contenders[1].build()?;
    let cubic = spec.contenders[2].build()?;
    let (runs, secs) = (spec.budget.runs, spec.budget.sim_secs);
    let mut text = String::new();
    let mut rows = Vec::new();

    let off_sweep: Vec<u64> = match spec.sweeps.first() {
        Some(SweepAxis::OffMeanMs(v)) => v.clone(),
        _ => return Err("table_competing spec needs an off_mean_ms sweep".to_string()),
    };
    let _ = writeln!(
        text,
        "== §5.6-a — RemyCC vs Compound, empirical flows, off-time sweep ({runs} runs x {secs} s) =="
    );
    let _ = writeln!(
        text,
        "{:>12} {:>20} {:>20}",
        "off time", "RemyCC tput (sd)", "Compound tput (sd)"
    );
    for (pi, &off_ms) in off_sweep.iter().enumerate() {
        let traffic = TrafficSpec {
            on: OnSpec::empirical(),
            off_mean: Ns::from_millis(off_ms),
            start_on: false,
        };
        let c = head_to_head(spec, &compound, &traffic, pi as u64)?;
        let _ = writeln!(
            text,
            "{:>9} ms {:>13.2} ({:.2}) {:>13.2} ({:.2})",
            off_ms, c.remy_mean, c.remy_sd, c.rival_mean, c.rival_sd
        );
        rows.push(format!(
            "compound,{off_ms},{},{},{},{}",
            c.remy_mean, c.remy_sd, c.rival_mean, c.rival_sd
        ));
    }

    let _ = writeln!(
        text,
        "\n== §5.6-b — RemyCC vs Cubic, exponential flows, size sweep ({runs} runs x {secs} s) =="
    );
    let _ = writeln!(
        text,
        "{:>12} {:>20} {:>20}",
        "mean size", "RemyCC tput (sd)", "Cubic tput (sd)"
    );
    for (j, mean_kb) in [100u64, 1000].into_iter().enumerate() {
        let traffic = TrafficSpec {
            on: OnSpec::ByBytes {
                mean_bytes: mean_kb as f64 * 1000.0,
            },
            off_mean: Ns::from_millis(500),
            start_on: false,
        };
        // Streams beyond the off-time grid keep part b independent.
        let c = head_to_head(spec, &cubic, &traffic, 1000 + j as u64)?;
        let _ = writeln!(
            text,
            "{:>9} kB {:>13.2} ({:.2}) {:>13.2} ({:.2})",
            mean_kb, c.remy_mean, c.remy_sd, c.rival_mean, c.rival_sd
        );
        rows.push(format!(
            "cubic,{mean_kb},{},{},{},{}",
            c.remy_mean, c.remy_sd, c.rival_mean, c.rival_sd
        ));
    }
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "rival,param,remy_mean,remy_sd,rival_mean,rival_sd".to_string(),
        csv_rows: rows,
        text,
    })
}

fn run_table_datacenter(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = writeln!(
        text,
        "{:<20} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "scheme", "tput mean", "tput median", "tput sd", "rtt mean", "rtt med"
    );
    let mut rows = Vec::new();
    for cell in &results.cells {
        let o = &cell.outcome;
        let mean_t = mean(&o.throughput_samples);
        let sd_t = std_dev(&o.throughput_samples);
        let mean_r = mean(&o.rtt_samples);
        let _ = writeln!(
            text,
            "{:<20} {:>9.1} M {:>9.1} M {:>10.1} {:>8.2}ms {:>8.2}ms",
            o.label, mean_t, o.median_throughput_mbps, sd_t, mean_r, o.median_rtt_ms
        );
        rows.push(format!(
            "{},{},{},{},{},{}",
            o.label, mean_t, o.median_throughput_mbps, sd_t, mean_r, o.median_rtt_ms
        ));
    }
    let _ = writeln!(
        text,
        "\npaper shape: comparable throughput, RemyCC lower variance, higher RTT."
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "scheme,tput_mean_mbps,tput_median_mbps,tput_sd,rtt_mean_ms,rtt_median_ms"
            .to_string(),
        csv_rows: rows,
        text,
    })
}

fn run_ablation_signals(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = writeln!(
        text,
        "{:<14} {:>12} {:>12}",
        "variant", "tput Mbps", "qdelay ms"
    );
    let mut rows = Vec::new();
    for cell in &results.cells {
        let t = cell.outcome.median_throughput_mbps;
        let d = cell.outcome.median_queue_delay_ms;
        let _ = writeln!(text, "{:<14} {t:>12.3} {d:>12.2}", cell.label);
        rows.push(format!("{},{t},{d}", cell.label));
    }
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "variant,median_tput,median_qdelay".to_string(),
        csv_rows: rows,
        text,
    })
}

fn run_ablation_loss(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let loss_rates: Vec<f64> = match spec.sweeps.first() {
        Some(SweepAxis::LossRate(v)) => v.clone(),
        _ => return Err("ablation_loss spec needs a loss_rate sweep".to_string()),
    };
    // Contender labels in spec order, from the already-run cells.
    let labels: Vec<String> = results
        .cells
        .iter()
        .filter(|c| c.point_index == 0)
        .map(|c| c.label.clone())
        .collect();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = write!(text, "{:<16}", "scheme");
    for p in &loss_rates {
        let _ = write!(text, " {:>9}", format!("{:.1}%", p * 100.0));
    }
    let _ = writeln!(text);
    let mut rows = Vec::new();
    for label in &labels {
        let _ = write!(text, "{label:<16}");
        let mut cells_csv = Vec::new();
        for pi in 0..loss_rates.len() {
            let cell = results
                .cell(pi, label)
                .ok_or_else(|| format!("missing cell {label}@{pi}"))?;
            let v = cell.outcome.median_throughput_mbps;
            let _ = write!(text, " {v:>9.3}");
            cells_csv.push(format!("{v}"));
        }
        let _ = writeln!(text);
        rows.push(format!("{},{}", label, cells_csv.join(",")));
    }
    let header = format!(
        "scheme,{}",
        loss_rates
            .iter()
            .map(|p| format!("loss_{p}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: header,
        csv_rows: rows,
        text,
    })
}

/// Pool one statistic over a subset of senders across all of a cell's
/// runs (active senders only, as in the paper's per-sender statistics).
fn pooled(
    runs: &[Vec<netsim::metrics::FlowSummary>],
    senders: std::ops::Range<usize>,
    stat: impl Fn(&netsim::metrics::FlowSummary) -> f64,
) -> Vec<f64> {
    runs.iter()
        .flat_map(|run| run[senders.clone()].iter())
        .filter(|f| f.was_active())
        .map(stat)
        .collect()
}

fn run_parking_lot3(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let n_hops = spec
        .workload
        .topology
        .as_ref()
        .and_then(|t| t.n_flow_hops())
        .ok_or("parking_lot3 spec needs a hop-list topology")?;
    let n_long = spec.workload.n() - n_hops;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = writeln!(
        text,
        "{:<16} {:>14} {:>14} {:>14} {:>14}",
        "scheme", "e2e tput Mbps", "cross tput", "e2e qdelay ms", "cross qdelay"
    );
    let mut rows = Vec::new();
    for cell in &results.cells {
        let long_t = pooled(&cell.runs, 0..n_long, |f| f.throughput_mbps);
        let cross_t = pooled(&cell.runs, n_long..spec.workload.n(), |f| f.throughput_mbps);
        let long_d = pooled(&cell.runs, 0..n_long, |f| f.mean_queue_delay_ms);
        let cross_d = pooled(&cell.runs, n_long..spec.workload.n(), |f| {
            f.mean_queue_delay_ms
        });
        let (lt, ct, ld, cd) = (
            median(&long_t),
            median(&cross_t),
            median(&long_d),
            median(&cross_d),
        );
        let _ = writeln!(
            text,
            "{:<16} {lt:>14.3} {ct:>14.3} {ld:>14.2} {cd:>14.2}",
            cell.label
        );
        rows.push(format!("{},{lt},{ct},{ld},{cd}", cell.label));
    }
    let _ = writeln!(
        text,
        "\nend-to-end flows cross {n_hops} queues and pay queueing at each; \
         proportionally-fair schemes still grant them a non-zero share"
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "scheme,e2e_median_tput_mbps,cross_median_tput_mbps,\
                     e2e_median_qdelay_ms,cross_median_qdelay_ms"
            .to_string(),
        csv_rows: rows,
        text,
    })
}

fn run_incast16(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let n = spec.workload.n();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = writeln!(
        text,
        "{:<18} {:>14} {:>14} {:>12}",
        "scheme", "agg tput Mbps", "per-flow med", "rtt med ms"
    );
    let mut rows = Vec::new();
    let wall_secs = spec.budget.sim_secs as f64;
    for cell in &results.cells {
        // Aggregate goodput over the wall clock (per-flow `throughput_mbps`
        // normalizes by each sender's on-time, so summing those would
        // overshoot the link rate whenever flows take turns).
        let agg: Vec<f64> = cell
            .runs
            .iter()
            .map(|run| run.iter().map(|f| f.bytes as f64 * 8.0).sum::<f64>() / wall_secs / 1e6)
            .collect();
        let per_flow = pooled(&cell.runs, 0..n, |f| f.throughput_mbps);
        let rtts = pooled(&cell.runs, 0..n, |f| f.mean_rtt_ms);
        let (a, p, r) = (mean(&agg), median(&per_flow), median(&rtts));
        let _ = writeln!(text, "{:<18} {a:>14.2} {p:>14.3} {r:>12.2}", cell.label);
        rows.push(format!("{},{a},{p},{r}", cell.label));
    }
    let _ = writeln!(
        text,
        "\nthe shallow 64-packet aggregation buffer punishes synchronized \
         window bursts; ECN (DCTCP) and delay-aware control avoid collapse"
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "scheme,agg_mean_tput_mbps,per_flow_median_tput_mbps,median_rtt_ms".to_string(),
        csv_rows: rows,
        text,
    })
}

fn run_reverse_path(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = writeln!(
        text,
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "scheme", "east tput", "west tput", "east rtt ms", "west rtt ms"
    );
    let mut rows = Vec::new();
    for cell in &results.cells {
        let east_t = median(&pooled(&cell.runs, 0..1, |f| f.throughput_mbps));
        let west_t = median(&pooled(&cell.runs, 1..2, |f| f.throughput_mbps));
        let east_r = median(&pooled(&cell.runs, 0..1, |f| f.mean_rtt_ms));
        let west_r = median(&pooled(&cell.runs, 1..2, |f| f.mean_rtt_ms));
        let _ = writeln!(
            text,
            "{:<16} {east_t:>12.3} {west_t:>12.3} {east_r:>12.1} {west_r:>12.1}",
            cell.label
        );
        rows.push(format!(
            "{},{east_t},{west_t},{east_r},{west_r}",
            cell.label
        ));
    }
    let _ = writeln!(
        text,
        "\nRTTs include ACK queueing behind the opposing direction's data — \
         the reverse-path congestion the paper's dumbbell rules out"
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "scheme,east_median_tput_mbps,west_median_tput_mbps,\
                     east_median_rtt_ms,west_median_rtt_ms"
            .to_string(),
        csv_rows: rows,
        text,
    })
}

fn run_web_churn(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let results = Experiment::new(spec.clone()).run()?;
    let n = spec.workload.n();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = writeln!(
        text,
        "{:<16} {:>9} {:>9} {:>7} {:>10} {:>10} {:>10} {:>12}",
        "scheme", "spawned", "done", "done%", "fct p50 ms", "fct p90 ms", "fct p99 ms", "pers tput"
    );
    let mut rows = Vec::new();
    for cell in &results.cells {
        let mut spawned = 0u64;
        let mut completed = 0u64;
        // Pool the per-run FCT reservoirs: each is an unbiased sample of
        // its run's completions, and the runs are identically budgeted.
        let mut fct_ms: Vec<f64> = Vec::new();
        for p in cell.populations.iter().flatten() {
            spawned += p.spawned;
            completed += p.completed;
            fct_ms.extend(p.fct_sample_secs.iter().map(|s| s * 1e3));
        }
        if spawned == 0 {
            return Err(format!("'{}': churn run spawned no flows", spec.name));
        }
        fct_ms.sort_by(f64::total_cmp);
        let done_pct = 100.0 * completed as f64 / spawned as f64;
        let (p50, p90, p99) = (
            quantile(&fct_ms, 0.5),
            quantile(&fct_ms, 0.9),
            quantile(&fct_ms, 0.99),
        );
        let pers = median(&pooled(&cell.runs, 0..n, |f| f.throughput_mbps));
        let _ = writeln!(
            text,
            "{:<16} {spawned:>9} {completed:>9} {done_pct:>7.1} {p50:>10.2} {p90:>10.2} \
             {p99:>10.2} {pers:>12.3}",
            cell.label
        );
        rows.push(format!(
            "{},{spawned},{completed},{done_pct},{p50},{p90},{p99},{pers}",
            cell.label
        ));
    }
    let _ = writeln!(
        text,
        "\nshort transfers finish inside slow-start, so their completion times \
         ride on the queue the persistent senders build; delay-minimizing \
         schemes shorten the tail"
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "scheme,spawned,completed,completed_pct,fct_p50_ms,fct_p90_ms,\
                     fct_p99_ms,persistent_median_tput_mbps"
            .to_string(),
        csv_rows: rows,
        text,
    })
}

fn run_failover_chain(spec: &ExperimentSpec) -> Result<ExperimentReport, String> {
    let full = Experiment::new(spec.clone()).run()?;
    // A second run truncated at the failure instant isolates the
    // pre-failure RTTs: the engine is deterministic and the workload
    // identical, so the truncated run is an exact event-prefix of the
    // full one. Subtracting its RTT sums from the full-run sums leaves
    // exactly the post-failure samples.
    let mut prefix_spec = spec.clone();
    prefix_spec.budget.sim_secs = (spec.budget.sim_secs / 2).max(1);
    let prefix = Experiment::new(prefix_spec).run()?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== {} ({} runs x {} s) ==",
        spec.title, spec.budget.runs, spec.budget.sim_secs
    );
    let _ = writeln!(
        text,
        "{:<16} {:>16} {:>16} {:>16}",
        "scheme", "pre-fail rtt ms", "post-fail rtt ms", "median tput Mbps"
    );
    let mut rows = Vec::new();
    for (cell, pre_cell) in full.cells.iter().zip(&prefix.cells) {
        let mut pre_sum = 0.0;
        let mut pre_n = 0u64;
        let mut full_sum = 0.0;
        let mut full_n = 0u64;
        for (run, pre_run) in cell.runs.iter().zip(&pre_cell.runs) {
            for (f, p) in run.iter().zip(pre_run) {
                full_sum += f.mean_rtt_ms * f.rtt_samples as f64;
                full_n += f.rtt_samples;
                pre_sum += p.mean_rtt_ms * p.rtt_samples as f64;
                pre_n += p.rtt_samples;
            }
        }
        if pre_n == 0 || full_n <= pre_n {
            return Err(format!(
                "{}: both failure windows need RTT samples (pre={pre_n}, total={full_n}); \
                 raise --secs",
                cell.label
            ));
        }
        let pre_rtt = pre_sum / pre_n as f64;
        let post_rtt = (full_sum - pre_sum) / (full_n - pre_n) as f64;
        let tput = median(&pooled(&cell.runs, 0..spec.workload.n(), |f| {
            f.throughput_mbps
        }));
        let _ = writeln!(
            text,
            "{:<16} {pre_rtt:>16.2} {post_rtt:>16.2} {tput:>16.3}",
            cell.label
        );
        rows.push(format!("{},{pre_rtt},{post_rtt},{tput}", cell.label));
    }
    let _ = writeln!(
        text,
        "\nthe backup path raises the propagation floor by 20 ms of RTT \
         (60 ms vs 40), so the post-failure RTT must step up if the reroute worked"
    );
    Ok(ExperimentReport {
        csv_name: spec.name.clone(),
        csv_header: "scheme,pre_fail_rtt_ms,post_fail_rtt_ms,median_tput_mbps".to_string(),
        csv_rows: rows,
        text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_twenty_one_experiments() {
        assert_eq!(all().len(), 21);
        let mut names: Vec<&str> = all().iter().map(|e| e.name).collect();
        names.sort_unstable();
        let mut expected = vec![
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "table1_dumbbell",
            "table1_cellular",
            "table_competing",
            "table_datacenter",
            "ablation_signals",
            "ablation_loss",
            "parking_lot3",
            "incast16",
            "reverse_path",
            "web_churn",
            "failover_chain",
            "fattree_k4_crosstraffic",
        ];
        expected.sort_unstable();
        assert_eq!(names, expected);
        assert!(by_name("fig4").is_some());
        assert!(by_name("parking_lot3").is_some());
        assert!(by_name("fig99").is_none());
    }

    #[test]
    fn topology_experiments_run_at_smoke_budget() {
        let tiny = Budget {
            runs: 2,
            sim_secs: 3,
        };
        for (name, contenders) in [
            ("parking_lot3", 3),
            ("incast16", 3),
            ("reverse_path", 3),
            ("failover_chain", 2),
            ("fattree_k4_crosstraffic", 3),
        ] {
            let rep = run_named(name, tiny).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!rep.csv_rows.is_empty(), "{name} produced CSV rows");
            assert_eq!(
                rep.csv_rows.len(),
                contenders,
                "{name}: one row per contender"
            );
            assert!(rep.text.contains("=="), "{name} printed a table");
        }
    }

    #[test]
    fn failover_chain_rtt_steps_up_after_the_link_failure() {
        // The acceptance check for the failure dynamics: the post-failure
        // RTT must sit a clear step above the pre-failure RTT (the backup
        // path costs 20 ms more of round-trip propagation), for every
        // contender, and the flows must keep delivering after the switch.
        let rep = run_failover_chain(&spec_failover_chain(Budget {
            runs: 1,
            sim_secs: 8,
        }))
        .expect("failover_chain runs");
        assert_eq!(rep.csv_rows.len(), 2, "one row per contender");
        for row in &rep.csv_rows {
            let cols: Vec<&str> = row.split(',').collect();
            let pre: f64 = cols[1].parse().expect("pre RTT");
            let post: f64 = cols[2].parse().expect("post RTT");
            let tput: f64 = cols[3].parse().expect("throughput");
            assert!(
                pre >= 40.0,
                "{row}: pre-failure RTT sits on the 40 ms primary floor"
            );
            assert!(
                post > pre + 10.0,
                "{row}: post-failure RTT steps up with the 20 ms slower backup path"
            );
            assert!(tput > 0.0, "{row}: flows keep delivering after failover");
        }
    }

    #[test]
    fn lte_experiments_report_delivered_capacity_utilization() {
        // The cellular experiments append a mean_utilization column
        // measured against the trace's delivered capacity over the
        // simulated window (not the nominal average rate).
        let rep = run_named(
            "fig7",
            Budget {
                runs: 1,
                sim_secs: 3,
            },
        )
        .expect("fig7 runs");
        assert!(
            rep.csv_header.ends_with(",mean_utilization"),
            "header: {}",
            rep.csv_header
        );
        assert!(rep.text.contains("utilization of delivered trace capacity"));
        for row in &rep.csv_rows {
            assert_eq!(
                row.split(',').count(),
                rep.csv_header.split(',').count(),
                "row width matches header: {row}"
            );
            let util: f64 = row.rsplit(',').next().unwrap().parse().expect("numeric");
            assert!(
                (0.0..=1.05).contains(&util),
                "utilization in [0, 1] (+rounding): {util}"
            );
        }
    }

    #[test]
    fn parking_lot_cross_traffic_outpaces_end_to_end_flows() {
        // End-to-end flows pay three queues; per-hop cross traffic pays
        // one. Any loss-based scheme should show the gap.
        let spec = spec_parking_lot3(Budget {
            runs: 2,
            sim_secs: 10,
        });
        let results = Experiment::new(spec).run().expect("runs");
        let reno = results
            .cells
            .iter()
            .find(|c| c.label == "NewReno")
            .expect("newreno cell");
        let e2e = median(&pooled(&reno.runs, 0..2, |f| f.throughput_mbps));
        let cross = median(&pooled(&reno.runs, 2..5, |f| f.throughput_mbps));
        assert!(e2e > 0.0 && cross > 0.0);
        assert!(
            cross > e2e,
            "cross traffic crosses fewer bottlenecks: cross={cross} e2e={e2e}"
        );
    }

    #[test]
    fn web_churn_smoke_reaches_ten_thousand_flows() {
        // The CI smoke budget: each run must still see ≥ 10k arrivals.
        let spec = spec_web_churn(Budget {
            runs: 2,
            sim_secs: 5,
        });
        let results = Experiment::new(spec).run().expect("runs");
        for cell in &results.cells {
            for p in &cell.populations {
                let p = p.as_ref().expect("population stats");
                assert!(
                    p.spawned >= 9_000,
                    "{}: λ=2000/s for 5 s spawns ~10k flows, got {}",
                    cell.label,
                    p.spawned
                );
                assert!(
                    p.completed as f64 > 0.8 * p.spawned as f64,
                    "{}: most transfers complete, got {}/{}",
                    cell.label,
                    p.completed,
                    p.spawned
                );
            }
        }
        let rep = run_web_churn(&spec_web_churn(Budget {
            runs: 1,
            sim_secs: 3,
        }))
        .expect("report");
        assert_eq!(rep.csv_rows.len(), 3, "one row per contender");
        assert!(rep.csv_header.contains("fct_p99_ms"));
    }

    #[test]
    fn reverse_path_rtt_exceeds_propagation_floor() {
        let spec = spec_reverse_path(Budget {
            runs: 1,
            sim_secs: 10,
        });
        let results = Experiment::new(spec).run().expect("runs");
        for cell in &results.cells {
            let rtt = median(&pooled(&cell.runs, 0..1, |f| f.mean_rtt_ms));
            assert!(
                rtt > 100.0,
                "{}: ACK queueing keeps RTT above the 100 ms floor, got {rtt}",
                cell.label
            );
        }
    }

    #[test]
    fn every_named_experiment_expands_to_nonempty_scenarios() {
        let tiny = Budget {
            runs: 2,
            sim_secs: 3,
        };
        for entry in all() {
            let spec = entry.spec(tiny);
            assert_eq!(spec.name, entry.name);
            let cells = spec.expand().unwrap_or_else(|e| {
                panic!("{} failed to expand: {e}", entry.name);
            });
            assert!(!cells.is_empty(), "{} expands to no cells", entry.name);
            for cell in &cells {
                assert!(
                    !cell.scenarios.is_empty(),
                    "{} cell has no scenarios",
                    entry.name
                );
                for sc in &cell.scenarios {
                    assert!(sc.n() > 0);
                    assert!(sc.duration > Ns::ZERO);
                }
            }
            // The spec itself round-trips.
            let back = ExperimentSpec::from_json(&spec.to_json())
                .unwrap_or_else(|e| panic!("{} spec does not re-parse: {e}", entry.name));
            assert_eq!(back, spec, "{} spec round trip", entry.name);
        }
    }

    #[test]
    fn contender_lineups() {
        assert_eq!(remy_contenders().len(), 3);
        let all_c = standard_contenders();
        assert_eq!(all_c.len(), 9);
        let labels: Vec<String> = all_c.iter().map(|c| c.label()).collect();
        assert!(labels.iter().any(|l| l.contains("Cubic/sfqCoDel")));
        assert!(labels.iter().any(|l| l.contains("RemyCC")));
    }

    #[test]
    fn workload_builders() {
        let w = dumbbell_workload(8);
        assert_eq!(w.n(), 8);
        let c = cellular_workload("verizon-like", 4);
        assert_eq!(c.n(), 4);
        assert_eq!(c.senders[0].rtt, Ns::from_millis(50));
    }

    #[test]
    fn smallest_generic_experiment_runs_through_registry() {
        let rep = run_named(
            "fig6",
            Budget {
                runs: 1,
                sim_secs: 4,
            },
        )
        .expect("fig6 runs");
        assert_eq!(rep.csv_name, "fig6_dynamics");
        assert!(rep.text.contains("flow 0 delivery rate"));
        assert!(!rep.csv_rows.is_empty());
    }
}
