//! The contender/outcome substrate shared by every experiment.
//!
//! The paper's evaluation methodology (§5.1): run each scenario for 100
//! simulated seconds, at least 128 times with different random draws,
//! measure each sender's throughput (`Σsi/Σti`) and average queueing
//! delay, and report per-scheme medians plus 1-σ ellipses.
//! [`evaluate_scenarios`] implements exactly that loop for one
//! [`Contender`] over explicit scenarios; experiment *descriptions* live
//! one layer up, in [`crate::spec::ExperimentSpec`], and are fanned
//! through the parallel engine by [`crate::experiment::Experiment`].

use congestion::Scheme;
use netsim::cc::CongestionControl;
use netsim::link::LinkSpec;
use netsim::queue::QueueSpec;
use netsim::scenario::Scenario;
use netsim::sim::Simulator;
use netsim::stats::{ellipse, median, Ellipse};
use remy::remycc::RemyCc;
use remy::whisker::WhiskerTree;
use std::sync::Arc;

/// One congestion-control configuration under test: either a baseline
/// scheme (which brings its own queue discipline and, for XCP, a router)
/// or a RemyCC rule table (always end-to-end over DropTail).
#[derive(Clone, Debug)]
pub enum Contender {
    /// A human-designed baseline.
    Baseline(Scheme),
    /// A RemyCC executing the given rule table.
    Remy {
        /// Display label, e.g. "RemyCC δ=0.1".
        label: String,
        /// The rule table.
        table: Arc<WhiskerTree>,
        /// Ablation hook: `[ack_ewma, send_ewma, rtt_ratio]`, `false`
        /// blinds the controller to that signal. All-true normally.
        signal_mask: [bool; 3],
    },
}

impl Contender {
    /// Wrap a baseline scheme.
    pub fn baseline(s: Scheme) -> Contender {
        Contender::Baseline(s)
    }

    /// Wrap a RemyCC rule table.
    pub fn remy(label: impl Into<String>, table: Arc<WhiskerTree>) -> Contender {
        Contender::remy_masked(label, table, [true; 3])
    }

    /// Wrap a RemyCC blinded to the masked-off congestion signals
    /// (ablation studies; see `RemyCc::with_signal_mask`).
    pub fn remy_masked(
        label: impl Into<String>,
        table: Arc<WhiskerTree>,
        signal_mask: [bool; 3],
    ) -> Contender {
        Contender::Remy {
            label: label.into(),
            table,
            signal_mask,
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Contender::Baseline(s) => s.label().to_string(),
            Contender::Remy { label, .. } => label.clone(),
        }
    }

    /// The bottleneck queue this contender runs over.
    pub fn queue_spec(&self, capacity: usize) -> QueueSpec {
        match self {
            Contender::Baseline(s) => s.queue_spec(capacity),
            Contender::Remy { .. } => QueueSpec::DropTail { capacity },
        }
    }

    /// Build one congestion-control instance.
    pub fn build_cc(&self) -> Box<dyn CongestionControl> {
        match self {
            Contender::Baseline(s) => s.build_cc(),
            Contender::Remy {
                label,
                table,
                signal_mask,
            } => Box::new(
                RemyCc::new(Arc::clone(table))
                    .with_name(label.clone())
                    .with_signal_mask(*signal_mask),
            ),
        }
    }

    /// Router hook, if the scheme needs one.
    pub fn router(&self, link: &LinkSpec, mss: u32) -> Option<Box<dyn netsim::router::RouterHook>> {
        match self {
            Contender::Baseline(s) => s.router(link, mss),
            Contender::Remy { .. } => None,
        }
    }
}

/// Pooled per-sender results of one contender across all runs.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Contender label.
    pub label: String,
    /// One entry per active sender per run: throughput, Mbps.
    pub throughput_samples: Vec<f64>,
    /// Matching queueing-delay samples, ms.
    pub delay_samples: Vec<f64>,
    /// Matching mean-RTT samples, ms.
    pub rtt_samples: Vec<f64>,
    /// Median per-sender throughput, Mbps.
    pub median_throughput_mbps: f64,
    /// Median per-sender queueing delay, ms.
    pub median_queue_delay_ms: f64,
    /// Median per-sender mean RTT, ms.
    pub median_rtt_ms: f64,
    /// The paper's 1-σ throughput-delay ellipse (x = delay, y = tput).
    pub ellipse: Ellipse,
}

impl Outcome {
    /// Pool aligned per-sender sample vectors (throughput Mbps, queueing
    /// delay ms, mean RTT ms) into medians plus the 1-σ ellipse.
    pub fn from_samples(label: String, tput: Vec<f64>, delay: Vec<f64>, rtt: Vec<f64>) -> Outcome {
        let e = ellipse(&delay, &tput);
        Outcome {
            label,
            median_throughput_mbps: median(&tput),
            median_queue_delay_ms: median(&delay),
            median_rtt_ms: median(&rtt),
            throughput_samples: tput,
            delay_samples: delay,
            rtt_samples: rtt,
            ellipse: e,
        }
    }

    /// A one-line report row matching the paper's tables.
    pub fn row(&self) -> String {
        format!(
            "{:<16} tput {:>7.3} Mbps   qdelay {:>8.2} ms   rtt {:>8.2} ms   (n={})",
            self.label,
            self.median_throughput_mbps,
            self.median_queue_delay_ms,
            self.median_rtt_ms,
            self.throughput_samples.len(),
        )
    }
}

/// Run a contender over explicit scenarios and pool per-sender samples,
/// per the paper's methodology.
///
/// Runs execute in parallel (see `remy::evaluator::set_jobs` /
/// `REMY_JOBS`), but samples are pooled in run order from positionally
/// collected results, so outcomes are identical at any thread count.
pub fn evaluate_scenarios(contender: &Contender, scenarios: &[Scenario]) -> Outcome {
    use rayon::prelude::*;
    let per_run: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = scenarios
        .par_iter()
        .map(|sc| {
            let ccs: Vec<Box<dyn CongestionControl>> =
                (0..sc.n()).map(|_| contender.build_cc()).collect();
            let router = contender.router(&sc.link, sc.mss);
            let results = Simulator::new(sc, ccs, router).run();
            let mut tput = Vec::new();
            let mut delay = Vec::new();
            let mut rtt = Vec::new();
            for f in results.active_flows() {
                tput.push(f.throughput_mbps);
                delay.push(f.mean_queue_delay_ms);
                rtt.push(f.mean_rtt_ms);
            }
            (tput, delay, rtt)
        })
        .collect();
    let mut tput = Vec::new();
    let mut delay = Vec::new();
    let mut rtt = Vec::new();
    for (t, d, r) in per_run {
        tput.extend(t);
        delay.extend(d);
        rtt.extend(r);
    }
    Outcome::from_samples(contender.label(), tput, delay, rtt)
}

/// Environment-variable override helpers so `cargo bench` and CI can scale
/// experiment budgets: `REMY_RUNS` (runs per scheme) and `REMY_SIM_SECS`.
pub fn runs_from_env(default: usize) -> usize {
    std::env::var("REMY_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// See [`runs_from_env`].
pub fn sim_secs_from_env(default: u64) -> u64 {
    std::env::var("REMY_SIM_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Budget, ContenderSpec, ExperimentSpec, LinkRef, WorkloadSpec};
    use netsim::time::Ns;
    use netsim::traffic::TrafficSpec;

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec::new(
            "small",
            "small dumbbell",
            WorkloadSpec::uniform(
                LinkRef::constant(15.0),
                1000,
                2,
                Ns::from_millis(150),
                TrafficSpec::fig4(),
            ),
            vec![ContenderSpec::new("newreno")],
            Budget {
                runs: 2,
                sim_secs: 10,
            },
            11,
        )
    }

    fn scenarios_for(c: &Contender) -> Vec<Scenario> {
        let spec = small_spec();
        let point = &spec.points()[0];
        spec.scenarios_at(0, point, c).expect("expand")
    }

    #[test]
    fn baseline_outcome_has_samples() {
        let c = Contender::baseline(Scheme::NewReno);
        let out = evaluate_scenarios(&c, &scenarios_for(&c));
        assert_eq!(out.label, "NewReno");
        assert!(!out.throughput_samples.is_empty());
        assert_eq!(out.throughput_samples.len(), out.delay_samples.len());
        assert!(out.median_throughput_mbps > 0.0);
        assert!(out.row().contains("NewReno"));
    }

    #[test]
    fn remy_contender_runs_end_to_end() {
        let table = Arc::new(WhiskerTree::single_rule());
        let c = Contender::remy("RemyCC test", table);
        let out = evaluate_scenarios(&c, &scenarios_for(&c));
        assert_eq!(out.label, "RemyCC test");
        assert!(out.median_throughput_mbps > 0.0);
    }

    #[test]
    fn xcp_contender_gets_its_router() {
        let c = Contender::baseline(Scheme::Xcp);
        assert!(c.router(&LinkSpec::constant(15.0), 1500).is_some());
        let c2 = Contender::baseline(Scheme::Cubic);
        assert!(c2.router(&LinkSpec::constant(15.0), 1500).is_none());
    }

    #[test]
    fn queue_spec_follows_scheme() {
        let sfq = Contender::baseline(Scheme::CubicSfqCodel).queue_spec(1000);
        assert!(matches!(sfq, QueueSpec::SfqCodel { .. }));
        let remy = Contender::remy("r", Arc::new(WhiskerTree::single_rule()));
        assert!(matches!(
            remy.queue_spec(5),
            QueueSpec::DropTail { capacity: 5 }
        ));
    }

    #[test]
    fn masked_contender_builds_blinded_cc() {
        let c = Contender::remy_masked(
            "blind",
            Arc::new(WhiskerTree::single_rule()),
            [false, false, false],
        );
        assert_eq!(c.label(), "blind");
        let out = evaluate_scenarios(&c, &scenarios_for(&c));
        assert!(out.median_throughput_mbps > 0.0, "blind RemyCC still runs");
    }

    #[test]
    fn deterministic_across_calls() {
        let c = Contender::baseline(Scheme::Vegas);
        let scenarios = scenarios_for(&c);
        let a = evaluate_scenarios(&c, &scenarios);
        let b = evaluate_scenarios(&c, &scenarios);
        assert_eq!(a.median_throughput_mbps, b.median_throughput_mbps);
        assert_eq!(a.delay_samples, b.delay_samples);
    }

    #[test]
    fn env_overrides_parse() {
        assert_eq!(runs_from_env(128), 128);
        assert_eq!(sim_secs_from_env(100), 100);
    }
}
