//! The experiment harness shared by every figure/table reproduction.
//!
//! The paper's evaluation methodology (§5.1): run each scenario for 100
//! simulated seconds, at least 128 times with different random draws,
//! measure each sender's throughput (`Σsi/Σti`) and average queueing
//! delay, and report per-scheme medians plus 1-σ ellipses. [`evaluate`]
//! implements exactly that loop for one [`Contender`] on one [`Workload`].

use congestion::Scheme;
use netsim::cc::CongestionControl;
use netsim::link::LinkSpec;
use netsim::queue::QueueSpec;
use netsim::scenario::{Scenario, SenderConfig};
use netsim::sim::Simulator;
use netsim::stats::{ellipse, median, Ellipse};
use netsim::time::Ns;
use netsim::traffic::TrafficSpec;
use remy::remycc::RemyCc;
use remy::whisker::WhiskerTree;
use std::sync::Arc;

/// One congestion-control configuration under test: either a baseline
/// scheme (which brings its own queue discipline and, for XCP, a router)
/// or a RemyCC rule table (always end-to-end over DropTail).
#[derive(Clone)]
pub enum Contender {
    /// A human-designed baseline.
    Baseline(Scheme),
    /// A RemyCC executing the given rule table.
    Remy {
        /// Display label, e.g. "RemyCC δ=0.1".
        label: String,
        /// The rule table.
        table: Arc<WhiskerTree>,
    },
}

impl Contender {
    /// Wrap a baseline scheme.
    pub fn baseline(s: Scheme) -> Contender {
        Contender::Baseline(s)
    }

    /// Wrap a RemyCC rule table.
    pub fn remy(label: impl Into<String>, table: Arc<WhiskerTree>) -> Contender {
        Contender::Remy {
            label: label.into(),
            table,
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Contender::Baseline(s) => s.label().to_string(),
            Contender::Remy { label, .. } => label.clone(),
        }
    }

    /// The bottleneck queue this contender runs over.
    pub fn queue_spec(&self, capacity: usize) -> QueueSpec {
        match self {
            Contender::Baseline(s) => s.queue_spec(capacity),
            Contender::Remy { .. } => QueueSpec::DropTail { capacity },
        }
    }

    /// Build one congestion-control instance.
    pub fn build_cc(&self) -> Box<dyn CongestionControl> {
        match self {
            Contender::Baseline(s) => s.build_cc(),
            Contender::Remy { label, table } => Box::new(
                RemyCc::new(Arc::clone(table)).with_name(label.clone()),
            ),
        }
    }

    /// Router hook, if the scheme needs one.
    pub fn router(
        &self,
        link: &LinkSpec,
        mss: u32,
    ) -> Option<Box<dyn netsim::router::RouterHook>> {
        match self {
            Contender::Baseline(s) => s.router(link, mss),
            Contender::Remy { .. } => None,
        }
    }
}

/// One experiment configuration: the dumbbell everyone contends on.
#[derive(Clone)]
pub struct Workload {
    /// Bottleneck link.
    pub link: LinkSpec,
    /// Queue capacity in packets (the discipline comes from the scheme).
    pub queue_capacity: usize,
    /// Degree of multiplexing.
    pub n_senders: usize,
    /// Propagation RTT shared by all senders.
    pub rtt: Ns,
    /// Offered-load process per sender.
    pub traffic: TrafficSpec,
    /// Duration of each run.
    pub duration: Ns,
    /// Number of independent runs (different seeds).
    pub runs: usize,
    /// Base seed; run `k` uses `seed + k`.
    pub seed: u64,
}

impl Workload {
    /// Materialize the scenario for run `k` under a given queue spec.
    pub fn scenario(&self, queue: QueueSpec, k: usize) -> Scenario {
        Scenario {
            link: self.link.clone(),
            queue,
            senders: (0..self.n_senders)
                .map(|_| SenderConfig {
                    rtt: self.rtt,
                    traffic: self.traffic.clone(),
                })
                .collect(),
            mss: 1500,
            duration: self.duration,
            seed: self.seed + k as u64,
            record_deliveries: false,
        }
    }
}

/// Pooled per-sender results of one contender across all runs.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Contender label.
    pub label: String,
    /// One entry per active sender per run: throughput, Mbps.
    pub throughput_samples: Vec<f64>,
    /// Matching queueing-delay samples, ms.
    pub delay_samples: Vec<f64>,
    /// Matching mean-RTT samples, ms.
    pub rtt_samples: Vec<f64>,
    /// Median per-sender throughput, Mbps.
    pub median_throughput_mbps: f64,
    /// Median per-sender queueing delay, ms.
    pub median_queue_delay_ms: f64,
    /// Median per-sender mean RTT, ms.
    pub median_rtt_ms: f64,
    /// The paper's 1-σ throughput-delay ellipse (x = delay, y = tput).
    pub ellipse: Ellipse,
}

impl Outcome {
    fn from_samples(
        label: String,
        tput: Vec<f64>,
        delay: Vec<f64>,
        rtt: Vec<f64>,
    ) -> Outcome {
        let e = ellipse(&delay, &tput);
        Outcome {
            label,
            median_throughput_mbps: median(&tput),
            median_queue_delay_ms: median(&delay),
            median_rtt_ms: median(&rtt),
            throughput_samples: tput,
            delay_samples: delay,
            rtt_samples: rtt,
            ellipse: e,
        }
    }

    /// A one-line report row matching the paper's tables.
    pub fn row(&self) -> String {
        format!(
            "{:<16} tput {:>7.3} Mbps   qdelay {:>8.2} ms   rtt {:>8.2} ms   (n={})",
            self.label,
            self.median_throughput_mbps,
            self.median_queue_delay_ms,
            self.median_rtt_ms,
            self.throughput_samples.len(),
        )
    }
}

/// Run a contender over every seed of a workload and pool per-sender
/// samples, per the paper's methodology.
pub fn evaluate(contender: &Contender, cfg: &Workload) -> Outcome {
    let scenarios: Vec<Scenario> = (0..cfg.runs)
        .map(|k| cfg.scenario(contender.queue_spec(cfg.queue_capacity), k))
        .collect();
    evaluate_scenarios(contender, &scenarios)
}

/// Run a contender over explicit scenarios (used by experiments with
/// per-sender RTTs or other customizations).
///
/// Runs execute in parallel (see `remy::evaluator::set_jobs` /
/// `REMY_JOBS`), but samples are pooled in run order from positionally
/// collected results, so outcomes are identical at any thread count.
pub fn evaluate_scenarios(contender: &Contender, scenarios: &[Scenario]) -> Outcome {
    use rayon::prelude::*;
    let per_run: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = scenarios
        .par_iter()
        .map(|sc| {
            let ccs: Vec<Box<dyn CongestionControl>> =
                (0..sc.n()).map(|_| contender.build_cc()).collect();
            let router = contender.router(&sc.link, sc.mss);
            let results = Simulator::new(sc, ccs, router).run();
            let mut tput = Vec::new();
            let mut delay = Vec::new();
            let mut rtt = Vec::new();
            for f in results.active_flows() {
                tput.push(f.throughput_mbps);
                delay.push(f.mean_queue_delay_ms);
                rtt.push(f.mean_rtt_ms);
            }
            (tput, delay, rtt)
        })
        .collect();
    let mut tput = Vec::new();
    let mut delay = Vec::new();
    let mut rtt = Vec::new();
    for (t, d, r) in per_run {
        tput.extend(t);
        delay.extend(d);
        rtt.extend(r);
    }
    Outcome::from_samples(contender.label(), tput, delay, rtt)
}

/// Environment-variable override helpers so `cargo bench` and CI can scale
/// experiment budgets: `REMY_RUNS` (runs per scheme) and `REMY_SIM_SECS`.
pub fn runs_from_env(default: usize) -> usize {
    std::env::var("REMY_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// See [`runs_from_env`].
pub fn sim_secs_from_env(default: u64) -> u64 {
    std::env::var("REMY_SIM_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> Workload {
        Workload {
            link: LinkSpec::constant(15.0),
            queue_capacity: 1000,
            n_senders: 2,
            rtt: Ns::from_millis(150),
            traffic: TrafficSpec::fig4(),
            duration: Ns::from_secs(10),
            runs: 2,
            seed: 11,
        }
    }

    #[test]
    fn baseline_outcome_has_samples() {
        let out = evaluate(&Contender::baseline(Scheme::NewReno), &small_workload());
        assert_eq!(out.label, "NewReno");
        assert!(!out.throughput_samples.is_empty());
        assert_eq!(out.throughput_samples.len(), out.delay_samples.len());
        assert!(out.median_throughput_mbps > 0.0);
        assert!(out.row().contains("NewReno"));
    }

    #[test]
    fn remy_contender_runs_end_to_end() {
        let table = Arc::new(WhiskerTree::single_rule());
        let out = evaluate(&Contender::remy("RemyCC test", table), &small_workload());
        assert_eq!(out.label, "RemyCC test");
        assert!(out.median_throughput_mbps > 0.0);
    }

    #[test]
    fn xcp_contender_gets_its_router() {
        let c = Contender::baseline(Scheme::Xcp);
        assert!(c.router(&LinkSpec::constant(15.0), 1500).is_some());
        let c2 = Contender::baseline(Scheme::Cubic);
        assert!(c2.router(&LinkSpec::constant(15.0), 1500).is_none());
    }

    #[test]
    fn queue_spec_follows_scheme() {
        let sfq = Contender::baseline(Scheme::CubicSfqCodel).queue_spec(1000);
        assert!(matches!(sfq, QueueSpec::SfqCodel { .. }));
        let remy = Contender::remy("r", Arc::new(WhiskerTree::single_rule()));
        assert!(matches!(remy.queue_spec(5), QueueSpec::DropTail { capacity: 5 }));
    }

    #[test]
    fn deterministic_across_calls() {
        let c = Contender::baseline(Scheme::Vegas);
        let w = small_workload();
        let a = evaluate(&c, &w);
        let b = evaluate(&c, &w);
        assert_eq!(a.median_throughput_mbps, b.median_throughput_mbps);
        assert_eq!(a.delay_samples, b.delay_samples);
    }

    #[test]
    fn env_overrides_parse() {
        assert_eq!(runs_from_env(128), 128);
        assert_eq!(sim_secs_from_env(100), 100);
    }
}
