//! # remy-sim — one-stop API for the TCP ex Machina reproduction
//!
//! Re-exports the simulator substrate (`netsim`), the baseline schemes
//! (`congestion`), the synthetic cellular traces (`traces`), and Remy
//! itself (`remy`), plus the [`harness`] used by every experiment binary,
//! example, and integration test in this repository.
//!
//! ```
//! use remy_sim::prelude::*;
//!
//! // Compare NewReno with a (trivial, untrained) RemyCC on Fig. 4's
//! // dumbbell workload, 2 runs of 10 seconds each.
//! let cfg = Workload {
//!     link: LinkSpec::constant(15.0),
//!     queue_capacity: 1000,
//!     n_senders: 4,
//!     rtt: Ns::from_millis(150),
//!     traffic: TrafficSpec::fig4(),
//!     duration: Ns::from_secs(10),
//!     runs: 2,
//!     seed: 1,
//! };
//! let newreno = Contender::baseline(Scheme::NewReno);
//! let out = evaluate(&newreno, &cfg);
//! assert!(out.median_throughput_mbps > 0.0);
//! ```

#![warn(missing_docs)]

pub use congestion;
pub use netsim;
pub use remy;
pub use traces;

pub mod harness;

/// The most commonly used items across all four crates.
pub mod prelude {
    pub use crate::harness::{evaluate, evaluate_scenarios, Contender, Outcome, Workload};
    pub use congestion::{Compound, Cubic, Dctcp, NewReno, Scheme, Vegas, Xcp, XcpRouter};
    pub use netsim::prelude::*;
    pub use remy::prelude::*;
    pub use traces::{att_schedule, verizon_schedule, LteModel};
}
