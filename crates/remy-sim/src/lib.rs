//! # remy-sim — one-stop API for the TCP ex Machina reproduction
//!
//! Re-exports the simulator substrate (`netsim`), the baseline schemes
//! (`congestion`), the synthetic cellular traces (`traces`), and Remy
//! itself (`remy`), plus the declarative experiment layer every binary,
//! example, and integration test in this repository runs on:
//!
//! * [`spec`] — serializable [`spec::ExperimentSpec`] descriptions
//!   (workload, contenders by name, sweep grids, budget);
//! * [`experiment`] — the [`experiment::Experiment`] runner that expands
//!   a spec through the deterministic parallel engine;
//! * [`experiments`] — the named registry of every figure/table
//!   reproduction (`experiments::by_name("fig4")`);
//! * [`harness`] — contenders, outcomes, and the scenario-level
//!   evaluation loop;
//! * [`report`] — tables and CSV output.
//!
//! ```
//! use remy_sim::prelude::*;
//!
//! // Compare NewReno with a shipped RemyCC on Fig. 4's dumbbell
//! // workload, 2 runs of 10 seconds each — as a declarative spec.
//! let spec = ExperimentSpec::new(
//!     "demo",
//!     "Fig. 4 demo",
//!     WorkloadSpec::uniform(
//!         LinkRef::constant(15.0),
//!         1000,
//!         4,
//!         Ns::from_millis(150),
//!         TrafficSpec::fig4(),
//!     ),
//!     vec![ContenderSpec::new("newreno"), ContenderSpec::new("remy:delta1")],
//!     Budget { runs: 2, sim_secs: 10 },
//!     1,
//! );
//! assert_eq!(spec, ExperimentSpec::from_json(&spec.to_json()).unwrap());
//! let results = Experiment::new(spec).run().unwrap();
//! assert!(results.cell(0, "NewReno").unwrap().outcome.median_throughput_mbps > 0.0);
//! ```

#![warn(missing_docs)]

pub use congestion;
pub use netsim;
pub use remy;
pub use traces;

pub mod experiment;
pub mod experiments;
pub mod harness;
pub mod report;
pub mod spec;

/// The most commonly used items across all four crates.
pub mod prelude {
    pub use crate::experiment::{CellResult, Experiment, ExperimentCell, ExperimentResults};
    pub use crate::harness::{evaluate_scenarios, Contender, Outcome};
    pub use crate::report::{
        print_outcomes, print_speedup_table, write_outcomes_csv, write_rows_csv, ExperimentReport,
    };
    pub use crate::spec::{
        Budget, ContenderSpec, ExperimentSpec, GraphGenerator, GraphLinkRef, GraphSpec, HopRef,
        LinkEventSpec, LinkRef, SweepAxis, SweepPoint, TopologySpec, WorkloadSpec,
    };
    pub use congestion::{Compound, Cubic, Dctcp, NewReno, Scheme, Vegas, Xcp, XcpRouter};
    pub use netsim::prelude::*;
    pub use remy::prelude::*;
    pub use traces::{att_schedule, verizon_schedule, LteModel};
}
