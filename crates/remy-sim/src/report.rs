//! Result rendering shared by the experiment engine, the registry, and
//! the figure binaries: throughput/delay tables, §1-style speedup tables,
//! and the CSV files written under `target/experiments/`.

use crate::harness::Outcome;
use std::io::Write as _;
use std::path::PathBuf;

/// Header of the per-contender outcomes CSV (one row per scheme).
pub const OUTCOMES_CSV_HEADER: &str = "scheme,median_tput_mbps,median_qdelay_ms,median_rtt_ms,mean_tput,mean_qdelay,sd_tput,sd_qdelay,corr,samples";

/// One outcomes-CSV row.
pub fn outcome_csv_row(o: &Outcome) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{}",
        o.label.replace(',', ";"),
        o.median_throughput_mbps,
        o.median_queue_delay_ms,
        o.median_rtt_ms,
        o.ellipse.mean_y,
        o.ellipse.mean_x,
        o.ellipse.sd_y,
        o.ellipse.sd_x,
        o.ellipse.corr,
        o.throughput_samples.len(),
    )
}

/// Render one experiment's outcomes as the paper-style throughput/delay
/// table, flagging each scheme's 1-σ ellipse.
pub fn outcomes_table(title: &str, outcomes: &[Outcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>10} {:>22}\n",
        "scheme", "tput Mbps", "qdelay ms", "rtt ms", "1-sigma (sd_t, sd_d)"
    ));
    for o in outcomes {
        out.push_str(&format!(
            "{:<16} {:>10.3} {:>12.2} {:>10.1} {:>12.3} {:>9.2}\n",
            o.label,
            o.median_throughput_mbps,
            o.median_queue_delay_ms,
            o.median_rtt_ms,
            o.ellipse.sd_y,
            o.ellipse.sd_x,
        ));
    }
    out
}

/// Render the §1-style "median speedup / median delay reduction" rows of a
/// reference contender against the rest.
pub fn speedup_table(reference: &Outcome, others: &[Outcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n{:<16} {:>14} {:>22}\n",
        "vs protocol", "median speedup", "median delay reduction"
    ));
    for o in others {
        if o.label == reference.label {
            continue;
        }
        let speedup = reference.median_throughput_mbps / o.median_throughput_mbps.max(1e-9);
        let delay_red = o.median_queue_delay_ms / reference.median_queue_delay_ms.max(1e-9);
        out.push_str(&format!(
            "{:<16} {:>12.2}x {:>20.2}x\n",
            o.label, speedup, delay_red
        ));
    }
    out
}

/// Print [`outcomes_table`] to stdout.
pub fn print_outcomes(title: &str, outcomes: &[Outcome]) {
    print!("{}", outcomes_table(title, outcomes));
}

/// Print [`speedup_table`] to stdout.
pub fn print_speedup_table(reference: &Outcome, others: &[Outcome]) {
    print!("{}", speedup_table(reference, others));
}

/// Where experiment CSVs land.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    // lint:allow(p1-sim-unwrap): host-side artifact I/O after the runs
    // finish; failing loudly on an unwritable disk is the right outcome.
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Write arbitrary rows to a named CSV under [`experiments_dir`].
pub fn write_rows_csv(name: &str, header: &str, rows: &[String]) {
    let path = experiments_dir().join(format!("{name}.csv"));
    // lint:allow(p1-sim-unwrap): host-side artifact I/O (see
    // experiments_dir); a CSV write failure should abort the report.
    let mut f = std::fs::File::create(&path).expect("create csv");
    // lint:allow(p1-sim-unwrap): same host-side artifact I/O as above.
    writeln!(f, "{header}").unwrap();
    for r in rows {
        // lint:allow(p1-sim-unwrap): same host-side artifact I/O as above.
        writeln!(f, "{r}").unwrap();
    }
    println!("(csv: {})", path.display());
}

/// Write a CSV of outcome rows for plotting.
pub fn write_outcomes_csv(name: &str, outcomes: &[Outcome]) {
    let rows: Vec<String> = outcomes.iter().map(outcome_csv_row).collect();
    write_rows_csv(name, OUTCOMES_CSV_HEADER, &rows);
}

/// A rendered experiment: the printable report plus its CSV. This is what
/// [`crate::experiments::run_named`] and every figure binary produce —
/// one value, printed and written the same way by every entry point, so
/// `remy-cli run fig4` and the `fig4_dumbbell8` binary emit byte-identical
/// output.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// CSV file stem under `target/experiments/`.
    pub csv_name: String,
    /// CSV header line.
    pub csv_header: String,
    /// CSV data rows.
    pub csv_rows: Vec<String>,
    /// The printable report (tables, findings), newline-terminated.
    pub text: String,
}

impl ExperimentReport {
    /// Print the report text to stdout.
    pub fn print(&self) {
        print!("{}", self.text);
    }

    /// Print CSV (header + rows) to stdout instead of the tables.
    pub fn print_csv(&self) {
        println!("{}", self.csv_header);
        for r in &self.csv_rows {
            println!("{r}");
        }
    }

    /// Write the CSV under `target/experiments/` (also prints the path).
    pub fn write_csv(&self) {
        write_rows_csv(&self.csv_name, &self.csv_header, &self.csv_rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(label: &str, tput: f64, delay: f64) -> Outcome {
        Outcome::from_samples(
            label.to_string(),
            vec![tput, tput * 1.1],
            vec![delay, delay * 0.9],
            vec![150.0, 151.0],
        )
    }

    #[test]
    fn tables_render_rows() {
        let o = vec![
            outcome("RemyCC d=1", 1.8, 80.0),
            outcome("Cubic", 1.3, 400.0),
        ];
        let t = outcomes_table("Fig. X (2 runs x 5 s)", &o);
        assert!(t.contains("== Fig. X (2 runs x 5 s) =="));
        assert!(t.contains("RemyCC d=1"));
        assert!(t.contains("Cubic"));
        let s = speedup_table(&o[0], &o[1..]);
        assert!(s.contains("vs protocol"));
        assert!(s.contains("Cubic"));
        assert!(!s.contains("RemyCC d=1 "), "reference row skipped");
    }

    #[test]
    fn csv_rows_have_stable_shape() {
        let row = outcome_csv_row(&outcome("A,B", 1.0, 2.0));
        assert!(row.starts_with("A;B,"), "commas in labels are escaped");
        assert_eq!(
            row.split(',').count(),
            OUTCOMES_CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn report_prints_and_writes() {
        let rep = ExperimentReport {
            csv_name: "report_test".to_string(),
            csv_header: "a,b".to_string(),
            csv_rows: vec!["1,2".to_string()],
            text: "== t ==\n".to_string(),
        };
        rep.write_csv();
        let path = experiments_dir().join("report_test.csv");
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
    }
}
