//! Declarative, serializable experiment specifications.
//!
//! An [`ExperimentSpec`] is plain data: a workload (bottleneck link, queue
//! capacity, senders with RTTs and traffic processes), a contender list by
//! name (`newreno`, `cubic`, `remy:delta1`, `remy:<path.json>`, …), sweep
//! axes that are Cartesian-expanded into runs, and a budget. Specs
//! round-trip through `remy::json` losslessly, so every figure, table, and
//! user-authored workload is a value you can enumerate, diff, check in,
//! and hand to [`crate::experiment::Experiment`] or `remy-cli run`.
//!
//! Seeds: run `k` of sweep point `p` simulates with
//! `split_seed(split_seed(spec.seed, p), k)` (see
//! [`netsim::rng::SimRng::split_seed`]) — per-run streams are forked, not
//! `seed + k`, so experiments with nearby base seeds never share traffic
//! randomness, and the same point seed is reused across contenders
//! (common random numbers, as in the paper's methodology).

use crate::harness::{runs_from_env, sim_secs_from_env, Contender};
use congestion::Scheme;
use netsim::json::{self, Value};
use netsim::link::LinkSpec;
use netsim::queue::QueueSpec;
use netsim::rng::SimRng;
use netsim::scenario::{ChurnSpec, Scenario, SenderConfig};
use netsim::time::Ns;
use netsim::topology::{FlowPath, Topology};
use netsim::traffic::TrafficSpec;
use remy::whisker::WhiskerTree;
use std::sync::Arc;

/// Default per-scheme run count (`REMY_RUNS` overrides).
pub const DEFAULT_RUNS: usize = 16;
/// Default simulated seconds per run (`REMY_SIM_SECS` overrides).
pub const DEFAULT_SIM_SECS: u64 = 30;

/// Experiment budget: how many seeded runs, how long each simulates.
/// The paper uses ≥128 runs of 100 s; the defaults here complete the full
/// suite in minutes on one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Independent seeded runs per (sweep point, contender).
    pub runs: usize,
    /// Simulated seconds per run.
    pub sim_secs: u64,
}

impl Budget {
    /// Resolve from `REMY_RUNS` / `REMY_SIM_SECS`, falling back to the
    /// repository defaults.
    pub fn from_env() -> Budget {
        Budget {
            runs: runs_from_env(DEFAULT_RUNS),
            sim_secs: sim_secs_from_env(DEFAULT_SIM_SECS),
        }
    }

    /// The repository defaults, ignoring the environment (stable golden
    /// spec output).
    pub fn default_fixed() -> Budget {
        Budget {
            runs: DEFAULT_RUNS,
            sim_secs: DEFAULT_SIM_SECS,
        }
    }

    /// Scale down (used by heavyweight experiments like the datacenter).
    pub fn scaled(self, runs_div: usize, secs_div: u64) -> Budget {
        Budget {
            runs: (self.runs / runs_div).max(2),
            sim_secs: (self.sim_secs / secs_div).max(3),
        }
    }

    /// Per-run simulated duration.
    pub fn duration(&self) -> Ns {
        Ns::from_secs(self.sim_secs)
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("runs", json::u64_value(self.runs as u64)),
            ("sim_secs", json::u64_value(self.sim_secs)),
        ])
    }

    /// Deserialize a value written by [`Budget::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Budget, String> {
        Ok(Budget {
            runs: v.field("runs")?.as_usize()?,
            sim_secs: v.field("sim_secs")?.as_u64()?,
        })
    }
}

/// A bottleneck link, by value or by name.
///
/// Unlike [`LinkSpec`], whose trace variant inlines a full delivery
/// schedule, a spec references the repository's synthetic cellular traces
/// by name — experiment JSON stays small and the schedule is regenerated
/// deterministically by the `traces` crate.
#[derive(Clone, Debug, PartialEq)]
pub enum LinkRef {
    /// Fixed-rate link.
    Constant {
        /// Rate in megabits per second.
        rate_mbps: f64,
    },
    /// A named trace: `verizon-like` (Figs. 7–8) or `att-like` (Fig. 9).
    NamedTrace {
        /// Trace name.
        name: String,
    },
}

impl LinkRef {
    /// A fixed-rate link reference.
    pub fn constant(rate_mbps: f64) -> LinkRef {
        LinkRef::Constant { rate_mbps }
    }

    /// A named-trace link reference.
    pub fn named_trace(name: impl Into<String>) -> LinkRef {
        LinkRef::NamedTrace { name: name.into() }
    }

    /// Materialize the link model.
    pub fn resolve(&self) -> Result<LinkSpec, String> {
        match self {
            LinkRef::Constant { rate_mbps } => {
                if !rate_mbps.is_finite() || *rate_mbps <= 0.0 {
                    return Err(format!("link rate must be positive, got {rate_mbps}"));
                }
                Ok(LinkSpec::Constant {
                    rate_mbps: *rate_mbps,
                })
            }
            LinkRef::NamedTrace { name } => {
                let schedule = match name.as_str() {
                    "verizon-like" => traces::verizon_schedule(),
                    "att-like" => traces::att_schedule(),
                    other => {
                        return Err(format!(
                            "unknown trace '{other}' (known: verizon-like, att-like)"
                        ))
                    }
                };
                Ok(LinkSpec::Trace {
                    schedule: Arc::new(schedule),
                    name: name.clone(),
                })
            }
        }
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        match self {
            LinkRef::Constant { rate_mbps } => Value::obj(vec![
                ("kind", Value::str("constant")),
                ("rate_mbps", Value::num(*rate_mbps)),
            ]),
            LinkRef::NamedTrace { name } => Value::obj(vec![
                ("kind", Value::str("named_trace")),
                ("name", Value::str(name.clone())),
            ]),
        }
    }

    /// Deserialize a value written by [`LinkRef::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<LinkRef, String> {
        match v.field("kind")?.as_str()? {
            "constant" => Ok(LinkRef::Constant {
                rate_mbps: v.field("rate_mbps")?.as_f64()?,
            }),
            "named_trace" => Ok(LinkRef::NamedTrace {
                name: v.field("name")?.as_str()?.to_string(),
            }),
            other => Err(format!("unknown link kind '{other}'")),
        }
    }
}

/// One hop of a [`TopologySpec`]: a link reference plus the hop's queue
/// depth and outbound propagation delay. As with the single-bottleneck
/// workload, the queue *discipline* is not part of the workload — each
/// contender's discipline is applied to every hop at that hop's capacity.
#[derive(Clone, Debug, PartialEq)]
pub struct HopRef {
    /// The hop's link.
    pub link: LinkRef,
    /// Queue depth in packets (the discipline comes from the scheme).
    pub queue_capacity: usize,
    /// Propagation delay toward the next hop on a path.
    pub prop_delay: Ns,
}

impl HopRef {
    /// A hop with no outbound propagation delay.
    pub fn new(link: LinkRef, queue_capacity: usize) -> HopRef {
        HopRef {
            link,
            queue_capacity,
            prop_delay: Ns::ZERO,
        }
    }

    /// Builder-style: set the outbound propagation delay.
    pub fn with_prop_delay(mut self, delay: Ns) -> HopRef {
        self.prop_delay = delay;
        self
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("link", self.link.to_json_value()),
            (
                "queue_capacity",
                json::u64_value(self.queue_capacity as u64),
            ),
            ("prop_delay_ns", json::ns_value(self.prop_delay)),
        ])
    }

    /// Deserialize a value written by [`HopRef::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<HopRef, String> {
        Ok(HopRef {
            link: LinkRef::from_json_value(v.field("link")?)?,
            queue_capacity: v.field("queue_capacity")?.as_usize()?,
            prop_delay: json::ns_from(v.field("prop_delay_ns")?)?,
        })
    }
}

/// One directed link of an explicit [`GraphGenerator`]: named endpoints
/// plus the wire it materializes into and its routing weight.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphLinkRef {
    /// Source router name.
    pub from: String,
    /// Destination router name.
    pub to: String,
    /// The link's wire.
    pub link: LinkRef,
    /// Queue depth in packets (the discipline comes from the scheme).
    pub queue_capacity: usize,
    /// Propagation delay across this link.
    pub prop_delay: Ns,
    /// Dijkstra routing weight.
    pub weight: u64,
}

impl GraphLinkRef {
    fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("from", Value::str(self.from.clone())),
            ("to", Value::str(self.to.clone())),
            ("link", self.link.to_json_value()),
            (
                "queue_capacity",
                json::u64_value(self.queue_capacity as u64),
            ),
            ("prop_delay_ns", json::ns_value(self.prop_delay)),
            ("weight", json::u64_value(self.weight)),
        ])
    }

    fn from_json_value(v: &Value) -> Result<GraphLinkRef, String> {
        Ok(GraphLinkRef {
            from: v.field("from")?.as_str()?.to_string(),
            to: v.field("to")?.as_str()?.to_string(),
            link: LinkRef::from_json_value(v.field("link")?)?,
            queue_capacity: v.field("queue_capacity")?.as_usize()?,
            prop_delay: json::ns_from(v.field("prop_delay_ns")?)?,
            weight: v.field("weight")?.as_u64()?,
        })
    }
}

/// How a graph topology's routers and links come to exist: listed
/// explicitly, or drawn by a named generator.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphGenerator {
    /// Hand-listed routers and directed links.
    Explicit {
        /// Router names, in id order.
        routers: Vec<String>,
        /// Directed links (list both directions for duplex wiring).
        links: Vec<GraphLinkRef>,
    },
    /// A duplex linear chain `r0 — r1 — … — rN` of `n_links` segments.
    Chain {
        /// Number of chain segments (routers = `n_links + 1`).
        n_links: usize,
        /// Every link's wire.
        link: LinkRef,
        /// Every link's queue depth.
        queue_capacity: usize,
        /// Every link's propagation delay.
        prop_delay: Ns,
    },
    /// The three-tier fat-tree with k=4 (20 routers, 64 directed links).
    FatTreeK4 {
        /// Every link's wire.
        link: LinkRef,
        /// Every link's queue depth.
        queue_capacity: usize,
        /// Every link's propagation delay.
        prop_delay: Ns,
    },
    /// A seeded Waxman random graph over `n` routers on the unit square.
    Waxman {
        /// Number of routers.
        n: usize,
        /// Edge-probability scale.
        alpha: f64,
        /// Distance-decay scale.
        beta: f64,
        /// Draw seed (independent of the experiment's run seeds).
        seed: u64,
        /// Every link's wire.
        link: LinkRef,
        /// Every link's queue depth.
        queue_capacity: usize,
        /// Every link's propagation delay.
        prop_delay: Ns,
    },
}

impl GraphGenerator {
    /// Short class name for listings (`explicit`, `chain`, …).
    pub fn name(&self) -> &'static str {
        match self {
            GraphGenerator::Explicit { .. } => "explicit",
            GraphGenerator::Chain { .. } => "chain",
            GraphGenerator::FatTreeK4 { .. } => "fat_tree_k4",
            GraphGenerator::Waxman { .. } => "waxman",
        }
    }

    /// Build the network's wiring, applying `discipline` at each link's
    /// capacity (the same rule as [`TopologySpec::resolve`] for hop
    /// lists).
    fn builder(&self, discipline: &QueueSpec) -> Result<netsim::graph::NetworkBuilder, String> {
        use netsim::graph::NetworkBuilder;
        match self {
            GraphGenerator::Explicit { routers, links } => {
                let mut b = NetworkBuilder::new();
                let ids: Vec<netsim::graph::RouterId> =
                    routers.iter().map(|name| b.add_router(name)).collect();
                let index = |name: &str| {
                    routers
                        .iter()
                        .position(|r| r == name)
                        .ok_or_else(|| format!("unknown router '{name}' in link list"))
                };
                for l in links {
                    let queue = discipline.clone().with_capacity(l.queue_capacity);
                    b.add_weighted_link(
                        ids[index(&l.from)?],
                        ids[index(&l.to)?],
                        l.link.resolve()?,
                        queue,
                        l.prop_delay,
                        l.weight,
                    );
                }
                Ok(b)
            }
            GraphGenerator::Chain {
                n_links,
                link,
                queue_capacity,
                prop_delay,
            } => Ok(NetworkBuilder::chain(
                *n_links,
                &link.resolve()?,
                &discipline.clone().with_capacity(*queue_capacity),
                *prop_delay,
            )),
            GraphGenerator::FatTreeK4 {
                link,
                queue_capacity,
                prop_delay,
            } => Ok(NetworkBuilder::fat_tree_k4(
                &link.resolve()?,
                &discipline.clone().with_capacity(*queue_capacity),
                *prop_delay,
            )),
            GraphGenerator::Waxman {
                n,
                alpha,
                beta,
                seed,
                link,
                queue_capacity,
                prop_delay,
            } => Ok(NetworkBuilder::waxman(
                *n,
                *alpha,
                *beta,
                *seed,
                &link.resolve()?,
                &discipline.clone().with_capacity(*queue_capacity),
                *prop_delay,
            )),
        }
    }

    fn to_json_value(&self) -> Value {
        match self {
            GraphGenerator::Explicit { routers, links } => Value::obj(vec![
                ("kind", Value::str("explicit")),
                (
                    "routers",
                    Value::Arr(routers.iter().map(Value::str).collect()),
                ),
                (
                    "links",
                    Value::Arr(links.iter().map(GraphLinkRef::to_json_value).collect()),
                ),
            ]),
            GraphGenerator::Chain {
                n_links,
                link,
                queue_capacity,
                prop_delay,
            } => Value::obj(vec![
                ("kind", Value::str("chain")),
                ("n_links", json::u64_value(*n_links as u64)),
                ("link", link.to_json_value()),
                ("queue_capacity", json::u64_value(*queue_capacity as u64)),
                ("prop_delay_ns", json::ns_value(*prop_delay)),
            ]),
            GraphGenerator::FatTreeK4 {
                link,
                queue_capacity,
                prop_delay,
            } => Value::obj(vec![
                ("kind", Value::str("fat_tree_k4")),
                ("link", link.to_json_value()),
                ("queue_capacity", json::u64_value(*queue_capacity as u64)),
                ("prop_delay_ns", json::ns_value(*prop_delay)),
            ]),
            GraphGenerator::Waxman {
                n,
                alpha,
                beta,
                seed,
                link,
                queue_capacity,
                prop_delay,
            } => Value::obj(vec![
                ("kind", Value::str("waxman")),
                ("n", json::u64_value(*n as u64)),
                ("alpha", Value::num(*alpha)),
                ("beta", Value::num(*beta)),
                ("seed", json::u64_value(*seed)),
                ("link", link.to_json_value()),
                ("queue_capacity", json::u64_value(*queue_capacity as u64)),
                ("prop_delay_ns", json::ns_value(*prop_delay)),
            ]),
        }
    }

    fn from_json_value(v: &Value) -> Result<GraphGenerator, String> {
        match v.field("kind")?.as_str()? {
            "explicit" => Ok(GraphGenerator::Explicit {
                routers: v
                    .field("routers")?
                    .as_arr()?
                    .iter()
                    .map(|r| r.as_str().map(str::to_string))
                    .collect::<Result<Vec<String>, String>>()?,
                links: v
                    .field("links")?
                    .as_arr()?
                    .iter()
                    .map(GraphLinkRef::from_json_value)
                    .collect::<Result<Vec<GraphLinkRef>, String>>()?,
            }),
            "chain" => Ok(GraphGenerator::Chain {
                n_links: v.field("n_links")?.as_usize()?,
                link: LinkRef::from_json_value(v.field("link")?)?,
                queue_capacity: v.field("queue_capacity")?.as_usize()?,
                prop_delay: json::ns_from(v.field("prop_delay_ns")?)?,
            }),
            "fat_tree_k4" => Ok(GraphGenerator::FatTreeK4 {
                link: LinkRef::from_json_value(v.field("link")?)?,
                queue_capacity: v.field("queue_capacity")?.as_usize()?,
                prop_delay: json::ns_from(v.field("prop_delay_ns")?)?,
            }),
            "waxman" => Ok(GraphGenerator::Waxman {
                n: v.field("n")?.as_usize()?,
                alpha: v.field("alpha")?.as_f64()?,
                beta: v.field("beta")?.as_f64()?,
                seed: v.field("seed")?.as_u64()?,
                link: LinkRef::from_json_value(v.field("link")?)?,
                queue_capacity: v.field("queue_capacity")?.as_usize()?,
                prop_delay: json::ns_from(v.field("prop_delay_ns")?)?,
            }),
            other => Err(format!("unknown graph generator '{other}'")),
        }
    }
}

/// One scheduled link failure or recovery, by named endpoints.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkEventSpec {
    /// When the event fires.
    pub at: Ns,
    /// Source router of the affected directed link.
    pub from: String,
    /// Destination router of the affected directed link.
    pub to: String,
    /// `true` brings the link up, `false` takes it down.
    pub up: bool,
}

impl LinkEventSpec {
    fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("at_ns", json::ns_value(self.at)),
            ("from", Value::str(self.from.clone())),
            ("to", Value::str(self.to.clone())),
            ("up", Value::Bool(self.up)),
        ])
    }

    fn from_json_value(v: &Value) -> Result<LinkEventSpec, String> {
        Ok(LinkEventSpec {
            at: json::ns_from(v.field("at_ns")?)?,
            from: v.field("from")?.as_str()?.to_string(),
            to: v.field("to")?.as_str()?.to_string(),
            up: v.field("up")?.as_bool()?,
        })
    }
}

/// A graph-form topology: a generator for routers and links, per-flow
/// (source, destination) router names in sender order, scheduled link
/// events, and the failover policy for packets caught by a failure.
/// Flow paths are *derived* by deterministic shortest-path routing, not
/// hand-listed.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSpec {
    /// Routers and links.
    pub generator: GraphGenerator,
    /// `flows[i]` is sender `i`'s (source, destination) router names.
    pub flows: Vec<(String, String)>,
    /// Scheduled link failures and recoveries.
    pub events: Vec<LinkEventSpec>,
    /// What happens to packets caught at a failed link.
    pub policy: netsim::graph::FailoverPolicy,
}

impl GraphSpec {
    fn to_json_value(&self) -> Value {
        let mut fields = vec![
            ("kind", Value::str("graph")),
            ("generator", self.generator.to_json_value()),
            (
                "flows",
                Value::Arr(
                    self.flows
                        .iter()
                        .map(|(s, d)| {
                            Value::Arr(vec![Value::str(s.clone()), Value::str(d.clone())])
                        })
                        .collect(),
                ),
            ),
        ];
        if !self.events.is_empty() {
            fields.push((
                "events",
                Value::Arr(
                    self.events
                        .iter()
                        .map(LinkEventSpec::to_json_value)
                        .collect(),
                ),
            ));
        }
        fields.push(("policy", Value::str(self.policy.name())));
        Value::obj(fields)
    }

    fn from_json_value(v: &Value) -> Result<GraphSpec, String> {
        let flows = v
            .field("flows")?
            .as_arr()?
            .iter()
            .map(|f| {
                let pair = f.as_arr()?;
                if pair.len() != 2 {
                    return Err("a flow is a [src, dst] router-name pair".to_string());
                }
                Ok((pair[0].as_str()?.to_string(), pair[1].as_str()?.to_string()))
            })
            .collect::<Result<Vec<(String, String)>, String>>()?;
        let events = match v.field("events") {
            Ok(e) => e
                .as_arr()?
                .iter()
                .map(LinkEventSpec::from_json_value)
                .collect::<Result<Vec<LinkEventSpec>, String>>()?,
            Err(_) => Vec::new(),
        };
        Ok(GraphSpec {
            generator: GraphGenerator::from_json_value(v.field("generator")?)?,
            flows,
            events,
            policy: netsim::graph::FailoverPolicy::from_name(v.field("policy")?.as_str()?)?,
        })
    }
}

/// A serializable multi-hop topology. `None` on a workload means the
/// legacy single-bottleneck dumbbell — every existing spec document is a
/// valid topology-era spec unchanged.
///
/// Two forms exist: the original hand-listed hop/path form, and the
/// graph form whose flow paths are derived by shortest-path routing over
/// a [`GraphSpec`]. The hop-list form serializes exactly as it always
/// did (no `kind` key), so pre-graph golden specs stay byte-identical.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// Hand-listed hops plus one [`FlowPath`] per sender.
    FlowHops {
        /// Every hop, indexed by position.
        hops: Vec<HopRef>,
        /// `paths[i]` routes sender `i` (index-aligned with the
        /// workload's sender list).
        paths: Vec<FlowPath>,
    },
    /// A first-class network graph with derived routes.
    Graph(GraphSpec),
}

/// Per-hop seed fork for stochastic-loss disciplines. Hop 0 keeps the
/// caller's stream (1-hop topologies stay byte-identical to the legacy
/// engine); every later hop forks its own — otherwise all hops would
/// replay the identical drop stream and the "independent" loss
/// processes would be perfectly correlated.
fn fork_lossy_hop_seeds(hops: &mut [netsim::topology::HopSpec]) {
    for (i, h) in hops.iter_mut().enumerate().skip(1) {
        if let QueueSpec::LossyDropTail { seed, .. } = &mut h.queue {
            *seed = SimRng::split_seed(*seed, i as u64);
        }
    }
}

impl TopologySpec {
    /// The hand-listed form (the pre-graph constructor).
    pub fn flow_hops(hops: Vec<HopRef>, paths: Vec<FlowPath>) -> TopologySpec {
        TopologySpec::FlowHops { hops, paths }
    }

    /// Number of hops of a hand-listed topology; `None` for graph form
    /// (its hop count is the built graph's link count).
    pub fn n_flow_hops(&self) -> Option<usize> {
        match self {
            TopologySpec::FlowHops { hops, .. } => Some(hops.len()),
            TopologySpec::Graph(_) => None,
        }
    }

    /// Short topology-class label for listings: `hops(n)` or
    /// `graph:<generator>`.
    pub fn class(&self) -> String {
        match self {
            TopologySpec::FlowHops { hops, .. } => format!("hops({})", hops.len()),
            TopologySpec::Graph(g) => format!("graph:{}", g.generator.name()),
        }
    }

    /// Materialize a runnable [`Topology`], applying `discipline` (a
    /// contender's queue spec) to every hop at that hop's capacity. A
    /// stochastic-loss discipline gets a fork-derived seed per hop —
    /// otherwise every hop would replay the identical drop stream and the
    /// "independent" loss processes would be perfectly correlated. Graph
    /// topologies resolve their named flows and events against the built
    /// network and derive every path by shortest-path routing.
    pub fn resolve(&self, discipline: &QueueSpec) -> Result<Topology, String> {
        match self {
            TopologySpec::FlowHops { hops, paths } => {
                let mut resolved = hops
                    .iter()
                    .map(|h| {
                        Ok(netsim::topology::HopSpec {
                            link: h.link.resolve()?,
                            queue: discipline.clone().with_capacity(h.queue_capacity),
                            prop_delay_out: h.prop_delay,
                        })
                    })
                    .collect::<Result<Vec<netsim::topology::HopSpec>, String>>()?;
                fork_lossy_hop_seeds(&mut resolved);
                Ok(Topology::from_flow_hops(resolved, paths.clone()))
            }
            TopologySpec::Graph(g) => {
                let net = g.generator.builder(discipline)?.build()?;
                let flows = g
                    .flows
                    .iter()
                    .map(|(s, d)| {
                        let src = net
                            .router(s)
                            .ok_or_else(|| format!("unknown router '{s}' in flow list"))?;
                        let dst = net
                            .router(d)
                            .ok_or_else(|| format!("unknown router '{d}' in flow list"))?;
                        Ok((src, dst))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let events = g
                    .events
                    .iter()
                    .map(|e| {
                        let from = net
                            .router(&e.from)
                            .ok_or_else(|| format!("unknown router '{}' in event list", e.from))?;
                        let to = net
                            .router(&e.to)
                            .ok_or_else(|| format!("unknown router '{}' in event list", e.to))?;
                        let link = net.link_between(from, to).ok_or_else(|| {
                            format!("no link '{}' → '{}' for a scheduled event", e.from, e.to)
                        })?;
                        Ok(netsim::graph::LinkEvent {
                            at: e.at,
                            link: link.index() as u32,
                            up: e.up,
                        })
                    })
                    .collect::<Result<Vec<netsim::graph::LinkEvent>, String>>()?;
                let mut topo = net.into_topology(&flows, events, g.policy)?;
                fork_lossy_hop_seeds(&mut topo.hops);
                Ok(topo)
            }
        }
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        match self {
            TopologySpec::FlowHops { hops, paths } => Value::obj(vec![
                (
                    "hops",
                    Value::Arr(hops.iter().map(HopRef::to_json_value).collect()),
                ),
                (
                    "paths",
                    Value::Arr(paths.iter().map(FlowPath::to_json_value).collect()),
                ),
            ]),
            TopologySpec::Graph(g) => g.to_json_value(),
        }
    }

    /// Deserialize a value written by [`TopologySpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<TopologySpec, String> {
        if let Ok(kind) = v.field("kind") {
            return match kind.as_str()? {
                "graph" => Ok(TopologySpec::Graph(GraphSpec::from_json_value(v)?)),
                other => Err(format!("unknown topology kind '{other}'")),
            };
        }
        Ok(TopologySpec::FlowHops {
            hops: v
                .field("hops")?
                .as_arr()?
                .iter()
                .map(HopRef::from_json_value)
                .collect::<Result<Vec<HopRef>, String>>()?,
            paths: v
                .field("paths")?
                .as_arr()?
                .iter()
                .map(FlowPath::from_json_value)
                .collect::<Result<Vec<FlowPath>, String>>()?,
        })
    }
}

/// The dumbbell everyone contends on: link, queue capacity, and per-sender
/// configuration. The queue *discipline* is not part of the workload —
/// each contender brings its own (`Cubic/sfqCoDel` runs over sfqCoDel,
/// everything else over DropTail of this capacity), exactly as in the
/// paper's router configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Bottleneck link (ignored when `topology` is set; hop 0 then plays
    /// that role in reports).
    pub link: LinkRef,
    /// Queue capacity in packets (the discipline comes from the scheme).
    pub queue_capacity: usize,
    /// Per-sender configuration; the length is the degree of multiplexing.
    pub senders: Vec<SenderConfig>,
    /// Record every delivery (sequence plots, Fig. 6).
    pub record_deliveries: bool,
    /// Multi-hop topology; `None` is the legacy single-bottleneck
    /// dumbbell.
    pub topology: Option<TopologySpec>,
    /// Dynamic flow churn (Poisson arrivals of finite transfers) layered
    /// over the persistent senders; `None` is the classic fixed
    /// population.
    pub churn: Option<ChurnSpec>,
}

impl WorkloadSpec {
    /// A dumbbell with `n` identical senders.
    pub fn uniform(
        link: LinkRef,
        queue_capacity: usize,
        n: usize,
        rtt: Ns,
        traffic: TrafficSpec,
    ) -> WorkloadSpec {
        WorkloadSpec {
            link,
            queue_capacity,
            senders: (0..n)
                .map(|_| SenderConfig {
                    rtt,
                    traffic: traffic.clone(),
                })
                .collect(),
            record_deliveries: false,
            topology: None,
            churn: None,
        }
    }

    /// Builder-style: route the senders through a multi-hop topology.
    pub fn with_topology(mut self, topology: TopologySpec) -> WorkloadSpec {
        self.topology = Some(topology);
        self
    }

    /// Builder-style: layer a dynamic flow-arrival process over the
    /// persistent senders.
    pub fn with_churn(mut self, churn: ChurnSpec) -> WorkloadSpec {
        churn.validate().expect("valid churn spec");
        assert!(
            self.topology.is_none(),
            "churn is not supported on a topology workload"
        );
        self.churn = Some(churn);
        self
    }

    /// Number of senders.
    pub fn n(&self) -> usize {
        self.senders.len()
    }

    /// Materialize the scenario for one run under a given queue spec (the
    /// contender's discipline at the workload's capacity; topology
    /// workloads re-apply the discipline per hop at each hop's own
    /// capacity).
    pub fn scenario(&self, queue: QueueSpec, duration: Ns, seed: u64) -> Result<Scenario, String> {
        if self.senders.is_empty() {
            return Err("workload has no senders".to_string());
        }
        let (link, queue, topology) = match &self.topology {
            None => (self.link.resolve()?, queue, None),
            Some(t) => {
                let topo = t.resolve(&queue)?;
                topo.validate(self.senders.len())?;
                // link/queue mirror hop 0 (single-hop inspection code and
                // XCP's rate configuration read them).
                (
                    topo.hops[0].link.clone(),
                    topo.hops[0].queue.clone(),
                    Some(topo),
                )
            }
        };
        Ok(Scenario {
            link,
            queue,
            senders: self.senders.clone(),
            mss: 1500,
            duration,
            seed,
            record_deliveries: self.record_deliveries,
            topology,
            churn: self.churn.clone(),
        })
    }

    fn senders_uniform(&self) -> bool {
        self.senders
            .windows(2)
            .all(|w| w[0].rtt == w[1].rtt && w[0].traffic == w[1].traffic)
    }

    /// Serialize to a JSON value. Identical senders compress to a
    /// `{"n", "rtt_ns", "traffic"}` object; heterogeneous ones (the
    /// RTT-fairness grid, Fig. 6's departing competitor) serialize as an
    /// array. Both forms parse back.
    pub fn to_json_value(&self) -> Value {
        let senders = if !self.senders.is_empty() && self.senders_uniform() {
            Value::obj(vec![
                ("n", json::u64_value(self.senders.len() as u64)),
                ("rtt_ns", json::ns_value(self.senders[0].rtt)),
                ("traffic", self.senders[0].traffic.to_json_value()),
            ])
        } else {
            Value::Arr(
                self.senders
                    .iter()
                    .map(SenderConfig::to_json_value)
                    .collect(),
            )
        };
        let mut fields = vec![
            ("link", self.link.to_json_value()),
            (
                "queue_capacity",
                json::u64_value(self.queue_capacity as u64),
            ),
            ("senders", senders),
            ("record_deliveries", Value::Bool(self.record_deliveries)),
        ];
        // Omitted for the legacy dumbbell so pre-topology golden specs
        // stay byte-identical.
        if let Some(t) = &self.topology {
            fields.push(("topology", t.to_json_value()));
        }
        // Same omission rule: churn-free specs serialize exactly as they
        // did before churn existed.
        if let Some(c) = &self.churn {
            fields.push(("churn", c.to_json_value()));
        }
        Value::obj(fields)
    }

    /// Deserialize a value written by [`WorkloadSpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<WorkloadSpec, String> {
        let senders_v = v.field("senders")?;
        let senders = match senders_v {
            Value::Arr(items) => items
                .iter()
                .map(SenderConfig::from_json_value)
                .collect::<Result<Vec<SenderConfig>, String>>()?,
            obj @ Value::Obj(_) => {
                let n = obj.field("n")?.as_usize()?;
                let rtt = json::ns_from(obj.field("rtt_ns")?)?;
                let traffic = TrafficSpec::from_json_value(obj.field("traffic")?)?;
                (0..n)
                    .map(|_| SenderConfig {
                        rtt,
                        traffic: traffic.clone(),
                    })
                    .collect()
            }
            other => {
                return Err(format!(
                    "senders must be an array or a uniform object, found {}",
                    other.pretty()
                ))
            }
        };
        if senders.is_empty() {
            return Err("workload needs at least one sender".to_string());
        }
        let topology = match v.get("topology") {
            None | Some(Value::Null) => None,
            Some(t) => Some(TopologySpec::from_json_value(t)?),
        };
        let churn = match v.get("churn") {
            None | Some(Value::Null) => None,
            Some(c) => Some(ChurnSpec::from_json_value(c)?),
        };
        if churn.is_some() && topology.is_some() {
            return Err("churn is not supported on a topology workload".to_string());
        }
        Ok(WorkloadSpec {
            link: LinkRef::from_json_value(v.field("link")?)?,
            queue_capacity: v.field("queue_capacity")?.as_usize()?,
            senders,
            record_deliveries: v.field("record_deliveries")?.as_bool()?,
            topology,
            churn,
        })
    }
}

/// One contender, by name, with an optional display-label override.
///
/// Recognized names: `newreno`, `vegas`, `cubic`, `compound`,
/// `cubic+sfqcodel`, `xcp`, `dctcp` / `dctcp:<K>` (ECN mark threshold in
/// packets), and `remy:<table>` where `<table>` is a shipped asset name
/// (`delta01`, `delta1`, `delta10`, `onex`, `tenx`, `datacenter`,
/// `coexist`) or a path to a rule-table JSON file. A RemyCC name may
/// carry a `:mask=XYZ` suffix (three `0`/`1` digits for ack_ewma,
/// send_ewma, rtt_ratio) to blind the controller to signals — the
/// ablation studies in spec form.
#[derive(Clone, Debug, PartialEq)]
pub struct ContenderSpec {
    /// Scheme name, as above.
    pub scheme: String,
    /// Display-label override (RemyCC contenders only).
    pub label: Option<String>,
}

impl ContenderSpec {
    /// A contender by name with the default label.
    pub fn new(scheme: impl Into<String>) -> ContenderSpec {
        ContenderSpec {
            scheme: scheme.into(),
            label: None,
        }
    }

    /// A contender by name with an explicit display label.
    pub fn labeled(scheme: impl Into<String>, label: impl Into<String>) -> ContenderSpec {
        ContenderSpec {
            scheme: scheme.into(),
            label: Some(label.into()),
        }
    }

    /// Build the runnable contender.
    pub fn build(&self) -> Result<Contender, String> {
        let baseline = |s: Scheme| -> Result<Contender, String> {
            if self.label.is_some() {
                return Err(format!(
                    "baseline '{}' uses its scheme label; remove the override",
                    self.scheme
                ));
            }
            Ok(Contender::baseline(s))
        };
        match self.scheme.as_str() {
            "newreno" => baseline(Scheme::NewReno),
            "vegas" => baseline(Scheme::Vegas),
            "cubic" => baseline(Scheme::Cubic),
            "compound" => baseline(Scheme::Compound),
            "cubic+sfqcodel" | "cubic/sfqcodel" => baseline(Scheme::CubicSfqCodel),
            "xcp" => baseline(Scheme::Xcp),
            "dctcp" => baseline(Scheme::Dctcp { mark_threshold: 20 }),
            s if s.starts_with("dctcp:") => {
                let k = s["dctcp:".len()..]
                    .parse::<usize>()
                    .map_err(|_| format!("bad DCTCP threshold in '{s}'"))?;
                baseline(Scheme::Dctcp { mark_threshold: k })
            }
            s if s.starts_with("remy:") => {
                let rest = &s["remy:".len()..];
                let (table_name, mask) = match rest.split_once(":mask=") {
                    Some((t, m)) => (t, Some(parse_mask(m)?)),
                    None => (rest, None),
                };
                let table = load_table(table_name)?;
                let label = self
                    .label
                    .clone()
                    .unwrap_or_else(|| default_remy_label(table_name));
                Ok(match mask {
                    Some(m) => Contender::remy_masked(label, table, m),
                    None => Contender::remy(label, table),
                })
            }
            other => Err(format!("unknown contender '{other}'")),
        }
    }

    /// Serialize to a JSON value: a plain string when no label override.
    pub fn to_json_value(&self) -> Value {
        match &self.label {
            None => Value::str(self.scheme.clone()),
            Some(l) => Value::obj(vec![
                ("scheme", Value::str(self.scheme.clone())),
                ("label", Value::str(l.clone())),
            ]),
        }
    }

    /// Deserialize a value written by [`ContenderSpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<ContenderSpec, String> {
        match v {
            Value::Str(s) => Ok(ContenderSpec::new(s.clone())),
            obj @ Value::Obj(_) => Ok(ContenderSpec {
                scheme: obj.field("scheme")?.as_str()?.to_string(),
                label: match obj.get("label") {
                    None | Some(Value::Null) => None,
                    Some(l) => Some(l.as_str()?.to_string()),
                },
            }),
            other => Err(format!(
                "contender must be a string or object: {}",
                other.pretty()
            )),
        }
    }
}

fn parse_mask(m: &str) -> Result<[bool; 3], String> {
    let bits: Vec<bool> = m
        .chars()
        .map(|c| match c {
            '1' => Ok(true),
            '0' => Ok(false),
            other => Err(format!("mask digit must be 0 or 1, found '{other}'")),
        })
        .collect::<Result<Vec<bool>, String>>()?;
    bits.try_into()
        .map_err(|_| format!("mask needs exactly 3 digits, found '{m}'"))
}

fn load_table(name: &str) -> Result<Arc<WhiskerTree>, String> {
    if let Some(t) = remy::assets::by_name(name) {
        return Ok(t);
    }
    let text = std::fs::read_to_string(name)
        .map_err(|e| format!("cannot read rule table '{name}': {e}"))?;
    WhiskerTree::from_json(&text)
        .map(Arc::new)
        .map_err(|e| format!("cannot parse rule table '{name}': {e}"))
}

fn default_remy_label(table: &str) -> String {
    match table {
        "delta01" => "RemyCC d=0.1".to_string(),
        "delta1" => "RemyCC d=1".to_string(),
        "delta10" => "RemyCC d=10".to_string(),
        "onex" => "RemyCC 1x".to_string(),
        "tenx" => "RemyCC 10x".to_string(),
        "datacenter" => "RemyCC datacenter".to_string(),
        "coexist" => "RemyCC".to_string(),
        path => {
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(path);
            format!("RemyCC {stem}")
        }
    }
}

/// One sweep axis: a grid of values for one workload parameter. Multiple
/// axes Cartesian-expand into sweep points, in declaration order with the
/// last axis varying fastest.
#[derive(Clone, Debug, PartialEq)]
pub enum SweepAxis {
    /// Bottleneck link speeds, Mbps (replaces the workload link).
    LinkMbps(Vec<f64>),
    /// Shared propagation RTTs, milliseconds (applied to every sender).
    RttMs(Vec<u64>),
    /// Degrees of multiplexing (senders resized by cloning the first).
    Senders(Vec<usize>),
    /// Mean off-periods, milliseconds (duty-cycle sweep, every sender).
    OffMeanMs(Vec<u64>),
    /// Stochastic non-congestive loss rates: every contender runs over a
    /// lossy DropTail queue with this drop probability.
    LossRate(Vec<f64>),
}

impl SweepAxis {
    /// The axis key used in sweep-point coordinates and JSON.
    pub fn key(&self) -> &'static str {
        match self {
            SweepAxis::LinkMbps(_) => "link_mbps",
            SweepAxis::RttMs(_) => "rtt_ms",
            SweepAxis::Senders(_) => "n_senders",
            SweepAxis::OffMeanMs(_) => "off_mean_ms",
            SweepAxis::LossRate(_) => "loss_rate",
        }
    }

    /// Number of grid values.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::LinkMbps(v) => v.len(),
            SweepAxis::RttMs(v) => v.len(),
            SweepAxis::Senders(v) => v.len(),
            SweepAxis::OffMeanMs(v) => v.len(),
            SweepAxis::LossRate(v) => v.len(),
        }
    }

    /// True when the axis has no values (an empty axis expands to zero
    /// sweep points, i.e. an empty experiment).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn value(&self, i: usize) -> f64 {
        match self {
            SweepAxis::LinkMbps(v) => v[i],
            SweepAxis::RttMs(v) => v[i] as f64,
            SweepAxis::Senders(v) => v[i] as f64,
            SweepAxis::OffMeanMs(v) => v[i] as f64,
            SweepAxis::LossRate(v) => v[i],
        }
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        let values = match self {
            SweepAxis::LinkMbps(v) | SweepAxis::LossRate(v) => {
                Value::Arr(v.iter().map(|&x| Value::num(x)).collect())
            }
            SweepAxis::RttMs(v) | SweepAxis::OffMeanMs(v) => {
                Value::Arr(v.iter().map(|&x| json::u64_value(x)).collect())
            }
            SweepAxis::Senders(v) => {
                Value::Arr(v.iter().map(|&x| json::u64_value(x as u64)).collect())
            }
        };
        Value::obj(vec![("axis", Value::str(self.key())), ("values", values)])
    }

    /// Deserialize a value written by [`SweepAxis::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<SweepAxis, String> {
        let values = v.field("values")?.as_arr()?;
        let f64s = || -> Result<Vec<f64>, String> { values.iter().map(Value::as_f64).collect() };
        let u64s = || -> Result<Vec<u64>, String> { values.iter().map(Value::as_u64).collect() };
        match v.field("axis")?.as_str()? {
            "link_mbps" => Ok(SweepAxis::LinkMbps(f64s()?)),
            "rtt_ms" => Ok(SweepAxis::RttMs(u64s()?)),
            "n_senders" => Ok(SweepAxis::Senders(
                u64s()?.into_iter().map(|x| x as usize).collect(),
            )),
            "off_mean_ms" => Ok(SweepAxis::OffMeanMs(u64s()?)),
            "loss_rate" => Ok(SweepAxis::LossRate(f64s()?)),
            other => Err(format!("unknown sweep axis '{other}'")),
        }
    }
}

/// One point of the Cartesian sweep grid: `(axis key, value)` coordinates
/// in axis order. Experiments without sweeps have a single point with no
/// coordinates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SweepPoint {
    /// `(axis key, value)` pairs.
    pub coords: Vec<(String, f64)>,
}

impl SweepPoint {
    /// Coordinate lookup by axis key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.coords.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// A short "key=value, key=value" label; empty for the trivial point.
    pub fn label(&self) -> String {
        self.coords
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A complete, serializable experiment description. See the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    /// Machine name (registry key, CSV file stem).
    pub name: String,
    /// Human title printed above result tables.
    pub title: String,
    /// The dumbbell workload.
    pub workload: WorkloadSpec,
    /// Who contends (each runs the full grid).
    pub contenders: Vec<ContenderSpec>,
    /// Sweep axes, Cartesian-expanded.
    pub sweeps: Vec<SweepAxis>,
    /// Runs × seconds.
    pub budget: Budget,
    /// Base seed; see the module docs for the derivation.
    pub seed: u64,
    /// When set, the report appends the §1-style "median speedup / median
    /// delay reduction" table of this contender label over each
    /// human-designed scheme.
    pub speedup_reference: Option<String>,
}

impl ExperimentSpec {
    /// A spec with no sweeps and no speedup table (the common case).
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        workload: WorkloadSpec,
        contenders: Vec<ContenderSpec>,
        budget: Budget,
        seed: u64,
    ) -> ExperimentSpec {
        ExperimentSpec {
            name: name.into(),
            title: title.into(),
            workload,
            contenders,
            sweeps: Vec::new(),
            budget,
            seed,
            speedup_reference: None,
        }
    }

    /// Builder-style: add a sweep axis.
    pub fn with_sweep(mut self, axis: SweepAxis) -> ExperimentSpec {
        self.sweeps.push(axis);
        self
    }

    /// Builder-style: request the speedup table against this label.
    pub fn with_speedup_reference(mut self, label: impl Into<String>) -> ExperimentSpec {
        self.speedup_reference = Some(label.into());
        self
    }

    /// The Cartesian sweep grid, in axis order (last axis fastest).
    /// Always at least one point when there are no sweep axes.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = vec![SweepPoint::default()];
        for axis in &self.sweeps {
            let mut next = Vec::with_capacity(points.len() * axis.len());
            for p in &points {
                for i in 0..axis.len() {
                    let mut q = p.clone();
                    q.coords.push((axis.key().to_string(), axis.value(i)));
                    next.push(q);
                }
            }
            points = next;
        }
        points
    }

    /// The workload at one sweep point, plus the loss rate to inject (if
    /// the grid has a `loss_rate` axis).
    pub fn workload_at(&self, point: &SweepPoint) -> Result<(WorkloadSpec, Option<f64>), String> {
        let mut wl = self.workload.clone();
        let mut loss = None;
        for (key, value) in &point.coords {
            // Axes that reshape the single bottleneck or the sender count
            // have no meaning on an explicit topology (paths are
            // index-aligned with senders).
            if wl.topology.is_some() && matches!(key.as_str(), "link_mbps" | "n_senders") {
                return Err(format!(
                    "sweep axis '{key}' is not supported on a topology workload"
                ));
            }
            match key.as_str() {
                "link_mbps" => wl.link = LinkRef::constant(*value),
                "rtt_ms" => {
                    let rtt = Ns::from_millis_f64(*value);
                    for s in &mut wl.senders {
                        s.rtt = rtt;
                    }
                }
                "n_senders" => {
                    let n = *value as usize;
                    if n == 0 {
                        return Err("n_senders sweep value must be positive".to_string());
                    }
                    let template = wl
                        .senders
                        .first()
                        .ok_or("workload needs at least one sender to resize")?
                        .clone();
                    wl.senders.resize(n, template);
                }
                "off_mean_ms" => {
                    let off = Ns::from_millis(*value as u64);
                    for s in &mut wl.senders {
                        s.traffic.off_mean = off;
                    }
                }
                "loss_rate" => loss = Some(*value),
                other => return Err(format!("unknown sweep coordinate '{other}'")),
            }
        }
        Ok((wl, loss))
    }

    /// The common-random-numbers seed of sweep point `point_index`
    /// (shared by every contender at that point).
    pub fn point_seed(&self, point_index: usize) -> u64 {
        SimRng::split_seed(self.seed, point_index as u64)
    }

    /// The scenarios one contender runs at one sweep point: `budget.runs`
    /// fork-derived seeds over the contender's own queue discipline (or
    /// the lossy queue when the point carries a loss rate).
    pub fn scenarios_at(
        &self,
        point_index: usize,
        point: &SweepPoint,
        contender: &Contender,
    ) -> Result<Vec<Scenario>, String> {
        let (wl, loss) = self.workload_at(point)?;
        let point_seed = self.point_seed(point_index);
        (0..self.budget.runs)
            .map(|k| {
                let run_seed = SimRng::split_seed(point_seed, k as u64);
                let queue = match loss {
                    Some(p) => QueueSpec::LossyDropTail {
                        capacity: wl.queue_capacity,
                        drop_probability: p,
                        // An independent stream for the loss process.
                        seed: SimRng::split_seed(run_seed, u64::from(u32::MAX)),
                    },
                    None => contender.queue_spec(wl.queue_capacity),
                };
                wl.scenario(queue, self.budget.duration(), run_seed)
            })
            .collect()
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(self.name.clone())),
            ("title", Value::str(self.title.clone())),
            ("seed", json::u64_value(self.seed)),
            ("budget", self.budget.to_json_value()),
            ("workload", self.workload.to_json_value()),
            (
                "contenders",
                Value::Arr(
                    self.contenders
                        .iter()
                        .map(ContenderSpec::to_json_value)
                        .collect(),
                ),
            ),
            (
                "sweeps",
                Value::Arr(self.sweeps.iter().map(SweepAxis::to_json_value).collect()),
            ),
            (
                "speedup_reference",
                match &self.speedup_reference {
                    Some(l) => Value::str(l.clone()),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Deserialize a value written by [`ExperimentSpec::to_json_value`].
    /// `sweeps` and `speedup_reference` may be omitted in hand-written
    /// specs.
    pub fn from_json_value(v: &Value) -> Result<ExperimentSpec, String> {
        let sweeps = match v.get("sweeps") {
            None | Some(Value::Null) => Vec::new(),
            Some(s) => s
                .as_arr()?
                .iter()
                .map(SweepAxis::from_json_value)
                .collect::<Result<Vec<SweepAxis>, String>>()?,
        };
        let speedup_reference = match v.get("speedup_reference") {
            None | Some(Value::Null) => None,
            Some(l) => Some(l.as_str()?.to_string()),
        };
        Ok(ExperimentSpec {
            name: v.field("name")?.as_str()?.to_string(),
            title: v.field("title")?.as_str()?.to_string(),
            workload: WorkloadSpec::from_json_value(v.field("workload")?)?,
            contenders: v
                .field("contenders")?
                .as_arr()?
                .iter()
                .map(ContenderSpec::from_json_value)
                .collect::<Result<Vec<ContenderSpec>, String>>()?,
            sweeps,
            budget: Budget::from_json_value(v.field("budget")?)?,
            seed: v.field("seed")?.as_u64()?,
            speedup_reference,
        })
    }

    /// Serialize to pretty-printed JSON text (trailing newline included,
    /// so specs diff cleanly as checked-in files).
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_value().pretty();
        s.push('\n');
        s
    }

    /// Parse a spec from JSON text.
    pub fn from_json(text: &str) -> Result<ExperimentSpec, String> {
        ExperimentSpec::from_json_value(&json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4ish_spec() -> ExperimentSpec {
        ExperimentSpec::new(
            "test4",
            "test dumbbell",
            WorkloadSpec::uniform(
                LinkRef::constant(15.0),
                1000,
                8,
                Ns::from_millis(150),
                TrafficSpec::fig4(),
            ),
            vec![
                ContenderSpec::new("remy:delta1"),
                ContenderSpec::new("newreno"),
            ],
            Budget {
                runs: 4,
                sim_secs: 10,
            },
            4001,
        )
    }

    #[test]
    fn spec_round_trips_losslessly() {
        let mut spec = fig4ish_spec()
            .with_sweep(SweepAxis::LinkMbps(vec![4.7, 15.0, 47.0]))
            .with_sweep(SweepAxis::RttMs(vec![50, 150]))
            .with_speedup_reference("RemyCC d=1");
        spec.seed = u64::MAX - 17; // full-range seeds survive
        let text = spec.to_json();
        let back = ExperimentSpec::from_json(&text).expect("parse");
        assert_eq!(spec, back);
        assert_eq!(back.to_json(), text, "serialization is stable");
    }

    #[test]
    fn heterogeneous_senders_round_trip_as_array() {
        let mut spec = fig4ish_spec();
        spec.workload.senders[3].rtt = Ns::from_millis(50);
        let back = ExperimentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        assert_eq!(back.workload.senders[3].rtt, Ns::from_millis(50));
    }

    #[test]
    fn churn_workload_round_trips_inside_a_spec() {
        use netsim::traffic::OnSpec;
        let mut spec = fig4ish_spec();
        spec.workload = spec.workload.clone().with_churn(ChurnSpec {
            arrivals_per_sec: 2000.0,
            size: OnSpec::BoundedPareto {
                xm: 4500.0,
                alpha: 1.2,
                cap_bytes: 1_500_000.0,
            },
            rtt: Ns::from_millis(20),
        });
        let text = spec.to_json();
        assert!(text.contains("\"churn\""));
        let back = ExperimentSpec::from_json(&text).expect("parse");
        assert_eq!(spec, back);
        assert_eq!(back.to_json(), text, "serialization is stable");
        // The materialized scenario carries the churn spec through.
        let sc = back
            .workload
            .scenario(
                netsim::queue::QueueSpec::DropTail { capacity: 1000 },
                Ns::from_secs(5),
                1,
            )
            .expect("scenario");
        assert_eq!(sc.churn, spec.workload.churn);
        // Churn-free specs keep serializing without the key (golden specs
        // stay byte-identical).
        assert!(!fig4ish_spec().to_json().contains("churn"));
    }

    #[test]
    fn churn_plus_topology_is_rejected_on_parse() {
        let text = r#"{
            "name": "mini", "title": "mini", "seed": 1,
            "budget": {"runs": 2, "sim_secs": 3},
            "workload": {
                "link": {"kind": "constant", "rate_mbps": 10},
                "queue_capacity": 100,
                "senders": {"n": 1, "rtt_ns": 150000000,
                            "traffic": {"on": {"kind": "by_bytes", "mean_bytes": 1e5},
                                        "off_mean_ns": 500000000, "start_on": false}},
                "record_deliveries": false,
                "topology": {
                    "hops": [{"link": {"kind": "constant", "rate_mbps": 10},
                              "queue_capacity": 100, "prop_delay_ns": 0}],
                    "paths": [{"fwd": [0], "ack": []}]
                },
                "churn": {
                    "arrivals_per_sec": 100,
                    "size": {"kind": "bounded_pareto", "xm": 3000, "alpha": 1.2,
                             "cap_bytes": 100000},
                    "rtt_ns": 20000000
                }
            },
            "contenders": ["newreno"]
        }"#;
        let err = ExperimentSpec::from_json(text).expect_err("must reject");
        assert!(err.contains("churn"), "{err}");
    }

    #[test]
    fn omitted_optional_fields_default() {
        let text = r#"{
            "name": "mini", "title": "mini", "seed": 1,
            "budget": {"runs": 2, "sim_secs": 3},
            "workload": {
                "link": {"kind": "constant", "rate_mbps": 10},
                "queue_capacity": 100,
                "senders": {"n": 2, "rtt_ns": 150000000,
                            "traffic": {"on": {"kind": "by_bytes", "mean_bytes": 1e5},
                                        "off_mean_ns": 500000000, "start_on": false}},
                "record_deliveries": false
            },
            "contenders": ["newreno"]
        }"#;
        let spec = ExperimentSpec::from_json(text).expect("parse");
        assert!(spec.sweeps.is_empty());
        assert!(spec.speedup_reference.is_none());
        assert_eq!(spec.points().len(), 1);
    }

    #[test]
    fn cartesian_expansion_orders_last_axis_fastest() {
        let spec = fig4ish_spec()
            .with_sweep(SweepAxis::LinkMbps(vec![10.0, 20.0]))
            .with_sweep(SweepAxis::Senders(vec![2, 4, 8]));
        let points = spec.points();
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].get("link_mbps"), Some(10.0));
        assert_eq!(points[0].get("n_senders"), Some(2.0));
        assert_eq!(points[1].get("n_senders"), Some(4.0));
        assert_eq!(points[3].get("link_mbps"), Some(20.0));
        assert_eq!(points[5].label(), "link_mbps=20, n_senders=8");
    }

    #[test]
    fn sweep_coordinates_reshape_the_workload() {
        let spec = fig4ish_spec()
            .with_sweep(SweepAxis::Senders(vec![12]))
            .with_sweep(SweepAxis::RttMs(vec![50]))
            .with_sweep(SweepAxis::OffMeanMs(vec![10]))
            .with_sweep(SweepAxis::LossRate(vec![0.01]));
        let points = spec.points();
        let (wl, loss) = spec.workload_at(&points[0]).unwrap();
        assert_eq!(wl.n(), 12);
        assert!(wl.senders.iter().all(|s| s.rtt == Ns::from_millis(50)));
        assert!(wl
            .senders
            .iter()
            .all(|s| s.traffic.off_mean == Ns::from_millis(10)));
        assert_eq!(loss, Some(0.01));
    }

    #[test]
    fn scenarios_use_forked_seeds_and_common_random_numbers() {
        let spec = fig4ish_spec();
        let point = &spec.points()[0];
        let remy = spec.contenders[0].build().unwrap();
        let reno = spec.contenders[1].build().unwrap();
        let a = spec.scenarios_at(0, point, &remy).unwrap();
        let b = spec.scenarios_at(0, point, &reno).unwrap();
        assert_eq!(a.len(), spec.budget.runs);
        // Common random numbers: same seeds across contenders.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
        }
        // Forked derivation: never base + k.
        for (k, sc) in a.iter().enumerate() {
            assert_ne!(sc.seed, spec.seed + k as u64);
        }
        // A nearby base seed shares no stream.
        let mut shifted = spec.clone();
        shifted.seed += 1;
        let c = shifted.scenarios_at(0, point, &reno).unwrap();
        for x in &a {
            for y in &c {
                assert_ne!(x.seed, y.seed, "adjacent base seeds must not collide");
            }
        }
    }

    #[test]
    fn contender_names_build() {
        for name in [
            "newreno",
            "vegas",
            "cubic",
            "compound",
            "cubic+sfqcodel",
            "xcp",
            "dctcp",
            "dctcp:65",
            "remy:delta01",
            "remy:delta1:mask=011",
        ] {
            let c = ContenderSpec::new(name).build();
            assert!(c.is_ok(), "{name}: {c:?}");
        }
        assert_eq!(
            ContenderSpec::new("remy:delta01").build().unwrap().label(),
            "RemyCC d=0.1"
        );
        assert_eq!(
            ContenderSpec::labeled("remy:datacenter", "RemyCC (DropTail)")
                .build()
                .unwrap()
                .label(),
            "RemyCC (DropTail)"
        );
        assert!(ContenderSpec::new("bbr").build().is_err());
        assert!(ContenderSpec::new("remy:no_such_table_or_file")
            .build()
            .is_err());
        assert!(ContenderSpec::new("remy:delta1:mask=01").build().is_err());
        assert!(ContenderSpec::labeled("cubic", "nope").build().is_err());
    }

    #[test]
    fn named_traces_resolve() {
        assert!(LinkRef::named_trace("verizon-like").resolve().is_ok());
        assert!(LinkRef::named_trace("att-like").resolve().is_ok());
        assert!(LinkRef::named_trace("tmobile").resolve().is_err());
        assert!(LinkRef::constant(0.0).resolve().is_err());
    }

    /// Golden document for the topology-spec JSON format: field names and
    /// shapes here are a compatibility contract (checked-in experiment
    /// specs embed them).
    const TOPOLOGY_GOLDEN: &str = r#"{
        "hops": [
            {"link": {"kind": "constant", "rate_mbps": 10}, "queue_capacity": 1000,
             "prop_delay_ns": 10000000},
            {"link": {"kind": "constant", "rate_mbps": 5}, "queue_capacity": 64,
             "prop_delay_ns": 0}
        ],
        "paths": [
            {"fwd": [0, 1], "ack": []},
            {"fwd": [1], "ack": [0]}
        ]
    }"#;

    fn two_hop_topology() -> TopologySpec {
        TopologySpec::flow_hops(
            vec![
                HopRef::new(LinkRef::constant(10.0), 1000).with_prop_delay(Ns::from_millis(10)),
                HopRef::new(LinkRef::constant(5.0), 64),
            ],
            vec![
                FlowPath::through(vec![0, 1]),
                FlowPath::through(vec![1]).with_ack_path(vec![0]),
            ],
        )
    }

    #[test]
    fn graph_spec_resolve_names_unreachable_routers() {
        // The hop-less diagnostic, extended to graph specs: a flow
        // between disconnected routers must fail with both names, not
        // panic deep in the engine.
        let wire = |from: &str, to: &str| GraphLinkRef {
            from: from.to_string(),
            to: to.to_string(),
            link: LinkRef::constant(10.0),
            queue_capacity: 50,
            prop_delay: Ns::from_millis(1),
            weight: 1,
        };
        let spec = TopologySpec::Graph(GraphSpec {
            generator: GraphGenerator::Explicit {
                routers: vec!["left".into(), "right".into(), "island".into()],
                links: vec![wire("left", "right"), wire("right", "left")],
            },
            flows: vec![("left".into(), "island".into())],
            events: vec![],
            policy: netsim::graph::FailoverPolicy::Reroute,
        });
        let err = spec
            .resolve(&QueueSpec::DropTail { capacity: 100 })
            .unwrap_err();
        assert!(
            err.contains("'left'") && err.contains("'island'"),
            "diagnostic names both endpoints: {err}"
        );

        // A disconnected Waxman draw (alpha = 0 draws no links at all)
        // fails the same way.
        let spec = TopologySpec::Graph(GraphSpec {
            generator: GraphGenerator::Waxman {
                n: 4,
                alpha: 0.0,
                beta: 0.5,
                seed: 7,
                link: LinkRef::constant(10.0),
                queue_capacity: 50,
                prop_delay: Ns::from_millis(1),
            },
            flows: vec![("w0".into(), "w3".into())],
            events: vec![],
            policy: netsim::graph::FailoverPolicy::Reroute,
        });
        let err = spec
            .resolve(&QueueSpec::DropTail { capacity: 100 })
            .unwrap_err();
        assert!(err.contains("'w0'") && err.contains("'w3'"), "{err}");

        // Unknown router names in the flow list are caught before routing.
        let spec = TopologySpec::Graph(GraphSpec {
            generator: GraphGenerator::Explicit {
                routers: vec!["left".into(), "right".into()],
                links: vec![wire("left", "right"), wire("right", "left")],
            },
            flows: vec![("left".into(), "nowhere".into())],
            events: vec![],
            policy: netsim::graph::FailoverPolicy::Reroute,
        });
        let err = spec
            .resolve(&QueueSpec::DropTail { capacity: 100 })
            .unwrap_err();
        assert!(err.contains("'nowhere'"), "{err}");
    }

    #[test]
    fn topology_spec_parses_the_golden_document() {
        let v = json::parse(TOPOLOGY_GOLDEN).expect("golden parses");
        let t = TopologySpec::from_json_value(&v).expect("golden deserializes");
        assert_eq!(t, two_hop_topology());
        // And the writer reproduces a parseable, identical document.
        let back =
            TopologySpec::from_json_value(&json::parse(&t.to_json_value().pretty()).unwrap())
                .unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn topology_workload_round_trips_inside_a_spec() {
        let mut spec = fig4ish_spec();
        spec.workload.senders.truncate(2);
        spec.workload = spec.workload.clone().with_topology(two_hop_topology());
        let text = spec.to_json();
        assert!(text.contains("\"topology\""));
        let back = ExperimentSpec::from_json(&text).expect("parse");
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text, "stable serialization");
        // Legacy specs keep serializing without the key.
        assert!(!fig4ish_spec().to_json().contains("topology"));
    }

    #[test]
    fn topology_resolves_with_the_contender_discipline_per_hop() {
        let topo = two_hop_topology();
        let resolved = topo
            .resolve(&QueueSpec::SfqCodel {
                capacity: 1000,
                buckets: 64,
            })
            .expect("resolve");
        assert_eq!(resolved.hops.len(), 2);
        assert_eq!(
            resolved.hops[0].queue,
            QueueSpec::SfqCodel {
                capacity: 1000,
                buckets: 64
            }
        );
        assert_eq!(
            resolved.hops[1].queue,
            QueueSpec::SfqCodel {
                capacity: 64,
                buckets: 64
            },
            "discipline applied at the hop's own capacity"
        );
        assert_eq!(
            resolved.paths,
            vec![
                FlowPath::through(vec![0, 1]),
                FlowPath::through(vec![1]).with_ack_path(vec![0]),
            ]
        );
    }

    #[test]
    fn lossy_disciplines_get_independent_streams_per_hop() {
        let topo = TopologySpec::flow_hops(
            vec![
                HopRef::new(LinkRef::constant(10.0), 1000).with_prop_delay(Ns::from_millis(10)),
                HopRef::new(LinkRef::constant(5.0), 64),
                HopRef::new(LinkRef::constant(5.0), 64),
            ],
            vec![
                FlowPath::through(vec![0, 1, 2]),
                FlowPath::through(vec![1]).with_ack_path(vec![0]),
            ],
        );
        let resolved = topo
            .resolve(&QueueSpec::LossyDropTail {
                capacity: 1000,
                drop_probability: 0.01,
                seed: 77,
            })
            .expect("resolve");
        let seeds: Vec<u64> = resolved
            .hops
            .iter()
            .map(|h| match h.queue {
                QueueSpec::LossyDropTail { seed, .. } => seed,
                ref other => panic!("expected lossy queue, got {other:?}"),
            })
            .collect();
        assert_eq!(seeds[0], 77, "hop 0 keeps the caller's stream");
        assert_ne!(seeds[1], seeds[0], "hops must not replay one stream");
        assert_ne!(seeds[2], seeds[0]);
        assert_ne!(seeds[2], seeds[1]);
    }

    #[test]
    fn topology_workload_materializes_scenarios() {
        let mut wl = WorkloadSpec::uniform(
            LinkRef::constant(10.0),
            1000,
            2,
            Ns::from_millis(100),
            TrafficSpec::fig4(),
        );
        wl = wl.with_topology(two_hop_topology());
        let sc = wl
            .scenario(QueueSpec::DropTail { capacity: 1000 }, Ns::from_secs(5), 9)
            .expect("scenario");
        let topo = sc.topology.as_ref().expect("topology attached");
        assert_eq!(topo.n_hops(), 2);
        // Scenario link/queue mirror hop 0.
        assert_eq!(sc.queue, QueueSpec::DropTail { capacity: 1000 });
        assert!(
            matches!(sc.link, netsim::link::LinkSpec::Constant { rate_mbps } if rate_mbps == 10.0)
        );
        // Mismatched path count fails cleanly, not with a panic.
        let mut bad = wl.clone();
        bad.senders.push(bad.senders[0].clone());
        assert!(bad
            .scenario(QueueSpec::DropTail { capacity: 1000 }, Ns::from_secs(5), 9)
            .is_err());
    }

    #[test]
    fn topology_workloads_reject_structural_sweeps() {
        let mut spec = fig4ish_spec();
        spec.workload.senders.truncate(2);
        spec.workload = spec.workload.clone().with_topology(two_hop_topology());
        for axis in [SweepAxis::LinkMbps(vec![5.0]), SweepAxis::Senders(vec![4])] {
            let swept = spec.clone().with_sweep(axis);
            let err = swept.workload_at(&swept.points()[0]).unwrap_err();
            assert!(err.contains("not supported"), "{err}");
        }
        // Per-sender axes remain legal.
        let swept = spec.clone().with_sweep(SweepAxis::RttMs(vec![50]));
        let (wl, _) = swept.workload_at(&swept.points()[0]).expect("rtt sweep ok");
        assert!(wl.senders.iter().all(|s| s.rtt == Ns::from_millis(50)));
    }

    #[test]
    fn budget_scales_with_floors() {
        let b = Budget {
            runs: 16,
            sim_secs: 30,
        };
        let s = b.scaled(4, 3);
        assert_eq!(s.runs, 4);
        assert_eq!(s.sim_secs, 10);
        let tiny = b.scaled(100, 100);
        assert_eq!(tiny.runs, 2);
        assert_eq!(tiny.sim_secs, 3);
    }
}
