//! A minimal, API-compatible stand-in for the subset of `criterion` used
//! by this workspace's benches.
//!
//! The build environment has no access to crates.io, so the real criterion
//! cannot be vendored. This shim keeps the bench sources unchanged and
//! reports min/median/max wall-clock time per iteration. The *median* of
//! the sample batches is the tracked statistic (`--save-json`): on a
//! shared container a single scheduler-noise spike inflates a 10-sample
//! mean by tens of percent, while the median stays put — and the bench
//! gate compares these numbers at a 30 % tolerance. Passing `--test`
//! (as `cargo test` does for criterion benches) runs each benchmark body
//! once, for a fast smoke check.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work (benches here import
/// `std::hint::black_box` directly, but the real crate exposes this too).
pub use std::hint::black_box;

/// Target measurement time per sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(50);

/// The benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    /// `--save-json <path>`: merge mean ns/iter per benchmark into a flat
    /// JSON object at this path when the driver is dropped.
    save_json: Option<std::path::PathBuf>,
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Construct from process arguments (`--test` = single-iteration mode;
    /// `--save-json <path>` or `--save-json=<path>` saves machine-readable
    /// results; a bare positional argument filters benchmark names).
    pub fn from_args() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        let mut save_json = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                "--save-json" => save_json = args.next().map(Into::into),
                s if s.starts_with("--save-json=") => {
                    save_json = Some(s["--save-json=".len()..].to_string().into());
                }
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion {
            test_mode,
            filter,
            save_json,
            results: Vec::new(),
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, None, name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.name.clone();
        let samples = self.sample_size;
        run_one(self.parent, Some(&group), name, samples, f);
        self
    }

    /// Finish the group (reporting is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// (median, min, max) nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
    total_iters: u64,
}

impl Bencher {
    /// Measure the closure.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result = Some((0.0, 0.0, 0.0));
            self.total_iters = 1;
            return;
        }
        // Warm up and estimate a batch size that fills TARGET_SAMPLE.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        let mut total = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            per_iter.push(ns);
            total += iters_per_sample;
        }
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        // Median of the batches: robust against scheduler-noise spikes
        // that would dominate a mean of this few samples.
        per_iter.sort_unstable_by(f64::total_cmp);
        let mid = per_iter.len() / 2;
        let median = if per_iter.len() % 2 == 1 {
            per_iter[mid]
        } else {
            (per_iter[mid - 1] + per_iter[mid]) / 2.0
        };
        self.result = Some((median, min, max));
        self.total_iters = total;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    c: &mut Criterion,
    group: Option<&str>,
    name: &str,
    samples: usize,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if let Some(filter) = &c.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        test_mode: c.test_mode,
        samples,
        result: None,
        total_iters: 0,
    };
    f(&mut b);
    match b.result {
        Some(_) if c.test_mode => println!("test {full} ... ok (1 iteration)"),
        Some((median, min, max)) => {
            println!(
                "{full:<40} time: [{} {} {}]  ({} iters, tracked: median)",
                fmt_ns(min),
                fmt_ns(median),
                fmt_ns(max),
                b.total_iters
            );
            c.results.push((full, median));
        }
        None => println!("{full:<40} (no measurement: Bencher::iter not called)"),
    }
}

/// Parse the flat `{"name": mean_ns, ...}` document this shim writes.
/// Deliberately minimal: it only needs to read its own output (bench names
/// never contain quotes).
fn parse_results_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, value)) = rest.split_once("\": ") else {
            continue;
        };
        if let Ok(mean) = value.trim().parse::<f64>() {
            out.push((name.to_string(), mean));
        }
    }
    out
}

impl Drop for Criterion {
    /// Flush `--save-json` results, merging with any existing file so the
    /// bench binaries `cargo bench` runs in sequence accumulate into one
    /// document.
    fn drop(&mut self) {
        let Some(path) = &self.save_json else {
            return;
        };
        let mut merged: std::collections::BTreeMap<String, f64> = std::fs::read_to_string(path)
            .map(|t| parse_results_json(&t).into_iter().collect())
            .unwrap_or_default();
        merged.extend(self.results.iter().cloned());
        let mut doc = String::from("{\n");
        let n = merged.len();
        for (i, (name, mean)) in merged.iter().enumerate() {
            doc.push_str(&format!("  \"{name}\": {mean:.1}"));
            doc.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        doc.push_str("}\n");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("criterion shim: cannot write {}: {e}", path.display());
        }
    }
}

/// Mirror of criterion's group-definition macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Mirror of criterion's main-definition macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}
