//! A minimal, API-compatible stand-in for the subset of `proptest` used by
//! this workspace's property tests.
//!
//! The build environment has no access to crates.io, so the real proptest
//! cannot be vendored. This shim keeps the test sources unchanged: the
//! `proptest!` macro expands each property into a plain `#[test]` that
//! draws `cases` deterministic inputs from each strategy (seeded from the
//! test's name) and runs the body. There is no shrinking; a failing case
//! panics with the ordinary assertion message.

use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64)
// ---------------------------------------------------------------------------

/// Deterministic generator backing all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[lo, hi)`; requires `lo < hi`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128 * span) >> 64) as usize
    }
}

/// Build the per-test RNG. Seeded from the test name so every property
/// sees a stable, test-specific stream across runs and machines.
pub fn test_rng(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h)
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Mirror of proptest's run configuration (only `cases` is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `any::<T>()` strategy: full-domain values.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Full-domain strategy for `T` (implemented for the primitives the tests
/// use).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end);
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    alts: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !alts.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { alts }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(0, self.alts.len());
        self.alts[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// prop:: namespace
// ---------------------------------------------------------------------------

/// Mirror of the `proptest::prop` re-export namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Vectors with length drawn from `size` and elements from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.start >= self.size.end {
                    self.size.start
                } else {
                    rng.below(self.size.start, self.size.end)
                };
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// `None` about a quarter of the time, otherwise `Some(inner)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 3 == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a property (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -5i32..5, z in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..3, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_and_option(v in prop_oneof![Just(1u8), Just(2u8)], o in prop::option::of(0u8..2)) {
            prop_assert!(v == 1 || v == 2);
            if let Some(x) = o { prop_assert!(x < 2); }
        }
    }
}
