//! A minimal, API-compatible stand-in for the subset of `rayon` this
//! workspace uses: `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! The build environment has no access to crates.io, so the real rayon
//! cannot be vendored; this shim provides genuine data parallelism for the
//! one pattern the evaluator needs, via `std::thread::scope`. Results are
//! collected positionally (chunked, in input order), so output is
//! deterministic regardless of thread timing — the same guarantee the
//! evaluator documents for the real rayon.

use std::num::NonZeroUsize;

/// Parallel view over a slice, produced by
/// [`prelude::IntoParallelRefIterator::par_iter`].
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

/// A mapped parallel iterator awaiting collection.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` (applied on worker threads).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(items).max(1)
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Collect mapped results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.slice.len();
        if n <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let workers = worker_count(n);
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }
}

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    use super::ParIter;

    /// `&collection → par_iter()`, mirroring rayon's trait of the same name.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Borrowing parallel iterator over the data.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn maps_in_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let xs: Vec<u64> = vec![];
        let ys: Vec<u64> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
        let one = [7u64];
        let ys: Vec<u64> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(ys, vec![8]);
    }
}
