//! A minimal, API-compatible stand-in for the subset of `rayon` this
//! workspace uses: `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! The build environment has no access to crates.io, so the real rayon
//! cannot be vendored; this shim provides genuine data parallelism for the
//! one pattern the evaluator needs, via `std::thread::scope`. Work is
//! scheduled dynamically — workers pull the next item off a shared atomic
//! cursor — so a slow item cannot strand a whole static chunk behind one
//! thread, but results are still placed positionally (by input index), so
//! output is deterministic regardless of thread timing — the same
//! guarantee the evaluator documents for the real rayon.
//!
//! The worker count is, in priority order: [`set_num_threads`] (when
//! non-zero), the `REMY_JOBS` environment variable, then
//! `std::thread::available_parallelism()`.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Global worker-count override; 0 means "automatic".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cached `REMY_JOBS` environment lookup (0 = unset/invalid).
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Set the global worker count for subsequent parallel operations
/// (0 restores automatic selection). Mirrors configuring rayon's global
/// thread pool; unlike the real crate it may be called repeatedly.
pub fn set_num_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count a large-enough parallel operation would use right now.
pub fn current_num_threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    let env = *ENV_THREADS.get_or_init(|| {
        std::env::var("REMY_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    });
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel view over a slice, produced by
/// [`prelude::IntoParallelRefIterator::par_iter`].
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

/// A mapped parallel iterator awaiting collection.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` (applied on worker threads).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Collect mapped results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.slice.len();
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            // Serial fast path: no thread spawn, no scheduling overhead.
            return self.slice.iter().map(&self.f).collect();
        }
        let f = &self.f;
        let cursor = AtomicUsize::new(0);
        // Each worker pulls the next unclaimed index and records
        // (index, result) locally; results are then placed by index into
        // a slot vector, so the collected order is the input order
        // whatever the interleaving.
        let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&self.slice[i])));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in parts.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect()
    }
}

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    use super::ParIter;

    /// `&collection → par_iter()`, mirroring rayon's trait of the same name.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Borrowing parallel iterator over the data.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the global thread-count knob.
    static KNOB: Mutex<()> = Mutex::new(());

    #[test]
    fn maps_in_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let xs: Vec<u64> = vec![];
        let ys: Vec<u64> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
        let one = [7u64];
        let ys: Vec<u64> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(ys, vec![8]);
    }

    #[test]
    fn order_holds_at_every_thread_count() {
        let _k = KNOB.lock().unwrap();
        let xs: Vec<u64> = (0..333).collect();
        let expect: Vec<u64> = xs.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8] {
            crate::set_num_threads(jobs);
            let ys: Vec<u64> = xs.par_iter().map(|x| x * x).collect();
            assert_eq!(ys, expect, "jobs={jobs}");
        }
        crate::set_num_threads(0);
    }

    #[test]
    fn configured_thread_count_is_reported() {
        let _k = KNOB.lock().unwrap();
        crate::set_num_threads(3);
        assert_eq!(crate::current_num_threads(), 3);
        crate::set_num_threads(0);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn uneven_work_is_balanced_dynamically() {
        // Items with wildly different costs still collect positionally.
        let _k = KNOB.lock().unwrap();
        crate::set_num_threads(4);
        let xs: Vec<u64> = (0..64).collect();
        let ys: Vec<u64> = xs
            .par_iter()
            .map(|&x| {
                if x % 13 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x + 1
            })
            .collect();
        crate::set_num_threads(0);
        assert_eq!(ys, (1..=64).collect::<Vec<_>>());
    }
}
