//! Plain-text persistence for delivery schedules.
//!
//! Format: one integer nanosecond timestamp per line, optionally preceded
//! by `#`-comment lines; a final `# tail_gap_ns: N` comment records the
//! repetition gap. This mirrors the saturator-trace files the paper's
//! cellular methodology is built on, so real recordings (e.g. from the
//! Mahimahi project's public traces) can be dropped in.

use netsim::link::DeliverySchedule;
use netsim::time::Ns;
use std::fmt::Write as _;

/// Serialize a schedule to the text format.
pub fn to_text(schedule: &DeliverySchedule) -> String {
    let mut out = String::new();
    out.push_str("# netsim delivery schedule v1\n");
    let mut t = Ns::ZERO;
    let mut last = Ns::ZERO;
    for _ in 0..schedule.len() {
        t = schedule.next_after(t);
        writeln!(out, "{}", t.0).expect("string write");
        last = t;
    }
    let tail = schedule.period() - last;
    writeln!(out, "# tail_gap_ns: {}", tail.0).expect("string write");
    out
}

/// Parse the text format back into a schedule.
///
/// Returns `Err` with a line-numbered message on malformed input.
pub fn from_text(text: &str) -> Result<DeliverySchedule, String> {
    let mut instants = Vec::new();
    let mut tail_gap = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(v) = rest.trim().strip_prefix("tail_gap_ns:") {
                let gap: u64 = v
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: bad tail gap: {e}", lineno + 1))?;
                tail_gap = Some(Ns(gap));
            }
            continue;
        }
        let t: u64 = line
            .parse()
            .map_err(|e| format!("line {}: bad timestamp: {e}", lineno + 1))?;
        instants.push(Ns(t));
    }
    if instants.is_empty() {
        return Err("no delivery instants in trace".to_string());
    }
    for (i, w) in instants.windows(2).enumerate() {
        if w[0] >= w[1] {
            return Err(format!(
                "instants must strictly increase (violated at entry {})",
                i + 1
            ));
        }
    }
    let tail = tail_gap.unwrap_or_else(|| {
        // Default: mean inter-delivery gap.
        let span = instants.last().expect("non-empty").0;
        Ns((span / instants.len() as u64).max(1))
    });
    Ok(DeliverySchedule::new(instants, tail.max(Ns(1))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lte::LteModel;

    #[test]
    fn round_trip_preserves_schedule() {
        let s = LteModel::att_like().generate(3, Ns::from_secs(5));
        let text = to_text(&s);
        let back = from_text(&text).expect("parse");
        assert_eq!(s.len(), back.len());
        assert_eq!(s.period(), back.period());
        let mut t1 = Ns::ZERO;
        let mut t2 = Ns::ZERO;
        for _ in 0..s.len() {
            t1 = s.next_after(t1);
            t2 = back.next_after(t2);
            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# hello\n\n10\n20\n\n# tail_gap_ns: 5\n30\n";
        let s = from_text(text).expect("parse");
        assert_eq!(s.len(), 3);
        assert_eq!(s.period(), Ns(35));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_text("abc\n").is_err());
        assert!(from_text("").is_err());
        assert!(from_text("10\n10\n").is_err(), "non-increasing");
        assert!(from_text("# tail_gap_ns: x\n10\n").is_err());
    }

    #[test]
    fn default_tail_gap_is_mean_gap() {
        let s = from_text("100\n200\n300\n").expect("parse");
        // mean gap = 300/3 = 100 → period 400.
        assert_eq!(s.period(), Ns(400));
    }
}
