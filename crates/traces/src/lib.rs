//! # traces — synthetic cellular link traces
//!
//! The paper's §5.3 replays saturator recordings of Verizon and AT&T LTE
//! downlinks through a trace-driven ns-2 link. Those recordings are
//! proprietary, so this crate synthesizes delivery schedules with the same
//! relevant statistics (see `DESIGN.md` for the substitution argument):
//! a mean-reverting log-rate random walk with Poisson outages, exposed as
//! `netsim::link::DeliverySchedule` values that plug straight into
//! `LinkSpec::trace`.
//!
//! * [`lte::LteModel::verizon_like`] / [`lte::verizon_schedule`] — the
//!   0–50 Mbps, high-variance downlink of Figs. 7–8;
//! * [`lte::LteModel::att_like`] / [`lte::att_schedule`] — the slower
//!   AT&T-like downlink of Fig. 9;
//! * [`io`] — a text format for loading real recordings instead.

#![warn(missing_docs)]

pub mod io;
pub mod lte;

pub use lte::{att_schedule, verizon_schedule, LteModel};
