//! Synthetic LTE downlink delivery traces.
//!
//! The paper's cellular experiments (§5.3) replay saturator measurements
//! of the Verizon and AT&T LTE downlinks: a recording of the instants at
//! which the network released packets to the receiver, fed into ns-2 as a
//! trace-driven link. Those recordings are not redistributable, so this
//! module synthesizes delivery schedules with the same load-bearing
//! properties the evaluation depends on:
//!
//! * rates that wander over roughly 0–50 Mbps (Verizon) with strong
//!   temporal correlation — a mean-reverting random walk in log-rate;
//! * multi-second congestion/outage dips during which little or nothing
//!   is delivered (the "while mobile" artifacts);
//! * throughput and RTT dynamics far outside a general-purpose RemyCC's
//!   design range (10–20 Mbps, smooth), which is the point of the
//!   experiment: probing "model mismatch".
//!
//! Both presets are deterministic functions of a seed, so every harness
//! regenerates byte-identical schedules.

use netsim::link::DeliverySchedule;
use netsim::rng::SimRng;
use netsim::time::Ns;

/// Parameters of the Markov-modulated rate process.
#[derive(Clone, Debug)]
pub struct LteModel {
    /// Long-run geometric-mean rate, Mbps.
    pub mean_mbps: f64,
    /// Hard ceiling on the instantaneous rate, Mbps.
    pub max_mbps: f64,
    /// Std-dev of the log-rate random walk per √second (volatility).
    pub volatility: f64,
    /// Mean-reversion strength per second (larger = shorter excursions).
    pub reversion: f64,
    /// Expected outages per second.
    pub outage_rate: f64,
    /// Mean outage duration, seconds.
    pub outage_mean_s: f64,
    /// Rate multiplier during an outage (near zero, not exactly zero, so
    /// queues drain eventually).
    pub outage_factor: f64,
    /// Packet size the schedule is expressed in, bytes.
    pub mss: u32,
    /// Rate-update step, seconds.
    pub dt: f64,
}

impl LteModel {
    /// A Verizon-like downlink: ~12 Mbps typical, excursions toward
    /// 50 Mbps, noticeable outages. (Matches the §5.3 description of
    /// 0–50 Mbps variation while mobile.)
    pub fn verizon_like() -> LteModel {
        LteModel {
            mean_mbps: 12.0,
            max_mbps: 50.0,
            volatility: 0.9,
            reversion: 0.35,
            outage_rate: 0.05,
            outage_mean_s: 1.5,
            outage_factor: 0.02,
            mss: 1500,
            dt: 0.02,
        }
    }

    /// An AT&T-like downlink: slower (≈6 Mbps typical), somewhat steadier,
    /// with longer dips — matching the lower throughputs and higher delays
    /// of the paper's Fig. 9 relative to Fig. 7.
    pub fn att_like() -> LteModel {
        LteModel {
            mean_mbps: 6.0,
            max_mbps: 25.0,
            volatility: 0.7,
            reversion: 0.3,
            outage_rate: 0.04,
            outage_mean_s: 2.5,
            outage_factor: 0.02,
            mss: 1500,
            dt: 0.02,
        }
    }

    /// Generate a delivery schedule of the given duration.
    ///
    /// The rate follows an Ornstein–Uhlenbeck process in log-space,
    /// resampled every `dt`; deliveries are laid down by integrating the
    /// rate (one delivery per accumulated packet of credit). An
    /// independent Poisson outage process multiplies the rate by
    /// `outage_factor` while active.
    pub fn generate(&self, seed: u64, duration: Ns) -> DeliverySchedule {
        // lint:allow(r2-rng-underived-seed): frozen trace-stream constant; changing
        // the derivation regenerates every published cellular schedule.
        let mut rng = SimRng::new(seed ^ 0x17E_CE11);
        let dur_s = duration.as_secs_f64();
        let mean_pps = self.mean_mbps * 1e6 / 8.0 / self.mss as f64;
        let max_pps = self.max_mbps * 1e6 / 8.0 / self.mss as f64;
        let mu = mean_pps.ln();

        let mut log_rate = mu + self.volatility * rng.normal() * 0.5;
        let mut outage_until = -1.0f64;
        let mut credit = 0.0f64;
        let mut instants: Vec<Ns> = Vec::new();
        let mut t = 0.0f64;
        let sqrt_dt = self.dt.sqrt();

        while t < dur_s {
            // Rate update (OU step in log space).
            log_rate += self.reversion * (mu - log_rate) * self.dt
                + self.volatility * sqrt_dt * rng.normal();
            let mut rate = log_rate.exp().min(max_pps);
            // Outage process.
            if t >= outage_until && rng.chance(self.outage_rate * self.dt) {
                outage_until = t + rng.exponential(self.outage_mean_s);
            }
            if t < outage_until {
                rate *= self.outage_factor;
            }
            // Lay down deliveries for this step: credit accumulates at
            // `rate` packets/second; each unit is one delivery, spaced
            // uniformly within the step.
            credit += rate * self.dt;
            while credit >= 1.0 {
                credit -= 1.0;
                // Position within the step proportional to remaining credit.
                let frac = 1.0 - credit / (rate * self.dt).max(1e-12);
                let at = t + frac.clamp(0.0, 1.0) * self.dt;
                let at_ns = Ns::from_secs_f64(at.min(dur_s - 1e-9));
                // Strictly increasing: nudge collisions forward 1 ns.
                let at_ns = match instants.last() {
                    Some(&prev) if at_ns <= prev => Ns(prev.0 + 1),
                    _ => at_ns,
                };
                instants.push(at_ns);
            }
            t += self.dt;
        }
        assert!(
            !instants.is_empty(),
            "degenerate trace: no deliveries over {dur_s} s"
        );
        let mean_gap = Ns::from_secs_f64(dur_s / instants.len() as f64);
        DeliverySchedule::new(instants, mean_gap.max(Ns(1)))
    }
}

/// Standard trace length used by the experiment harnesses.
pub const TRACE_SECONDS: u64 = 120;

/// The Verizon-like schedule used across the cellular experiments
/// (Figs. 7, 8 and the §1 cellular table). Deterministic.
pub fn verizon_schedule() -> DeliverySchedule {
    LteModel::verizon_like().generate(2013, Ns::from_secs(TRACE_SECONDS))
}

/// The AT&T-like schedule (Fig. 9). Deterministic.
pub fn att_schedule() -> DeliverySchedule {
    LteModel::att_like().generate(4013, Ns::from_secs(TRACE_SECONDS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = LteModel::verizon_like().generate(9, Ns::from_secs(20));
        let b = LteModel::verizon_like().generate(9, Ns::from_secs(20));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.next_after(Ns::ZERO), b.next_after(Ns::ZERO));
        assert_eq!(a.period(), b.period());
    }

    #[test]
    fn different_seeds_differ() {
        let a = LteModel::verizon_like().generate(1, Ns::from_secs(20));
        let b = LteModel::verizon_like().generate(2, Ns::from_secs(20));
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn verizon_mean_rate_in_ballpark() {
        let s = LteModel::verizon_like().generate(7, Ns::from_secs(60));
        let mbps = s.len() as f64 * 1500.0 * 8.0 / 60.0 / 1e6;
        assert!(
            (6.0..25.0).contains(&mbps),
            "verizon-like long-run rate {mbps} Mbps"
        );
    }

    #[test]
    fn att_is_slower_than_verizon() {
        let v = LteModel::verizon_like().generate(7, Ns::from_secs(60));
        let a = LteModel::att_like().generate(7, Ns::from_secs(60));
        assert!(a.len() < v.len(), "AT&T {} vs Verizon {}", a.len(), v.len());
    }

    #[test]
    fn rate_is_time_varying() {
        // Split into 1-second bins; the delivery counts must vary a lot
        // (coefficient of variation well above a constant-rate link's 0).
        let s = LteModel::verizon_like().generate(11, Ns::from_secs(60));
        let mut t = Ns::ZERO;
        let mut bins = vec![0f64; 60];
        for _ in 0..s.len() {
            t = s.next_after(t);
            if t >= Ns::from_secs(60) {
                break;
            }
            bins[t.as_secs_f64() as usize] += 1.0;
        }
        let mean = netsim::stats::mean(&bins);
        let sd = netsim::stats::std_dev(&bins);
        assert!(
            sd / mean > 0.3,
            "rate should vary strongly: mean {mean}, sd {sd}"
        );
    }

    #[test]
    fn has_deep_dips() {
        // Outages: some 1-second bins should see under a quarter of the
        // mean delivery count.
        let s = LteModel::verizon_like().generate(13, Ns::from_secs(120));
        let mut t = Ns::ZERO;
        let mut bins = vec![0f64; 120];
        loop {
            t = s.next_after(t);
            if t >= Ns::from_secs(120) {
                break;
            }
            bins[t.as_secs_f64() as usize] += 1.0;
        }
        let mean = netsim::stats::mean(&bins);
        let deep = bins.iter().filter(|&&b| b < 0.25 * mean).count();
        assert!(deep >= 2, "expected outage dips, found {deep} deep bins");
    }

    #[test]
    fn schedule_instants_strictly_increase() {
        // DeliverySchedule::new asserts this internally; regenerate a few
        // models to exercise the nudge path.
        for seed in 0..5 {
            let _ = LteModel::verizon_like().generate(seed, Ns::from_secs(10));
            let _ = LteModel::att_like().generate(seed, Ns::from_secs(10));
        }
    }

    #[test]
    fn standard_schedules_are_stable() {
        let v = verizon_schedule();
        let a = att_schedule();
        // Pin the lengths so accidental generator changes are caught; if a
        // deliberate model change alters these, update the constants and
        // re-record EXPERIMENTS.md.
        assert!(v.len() > 50_000, "verizon schedule has {} slots", v.len());
        assert!(a.len() > 25_000, "att schedule has {} slots", a.len());
    }
}
