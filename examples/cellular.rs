//! Cellular "model mismatch" demo (paper §5.3, Figs. 7–9).
//!
//! RemyCCs were designed for smooth 10–20 Mbps links; here they run over a
//! synthetic LTE downlink whose rate swings between ~0 and 50 Mbps — far
//! outside the design range — against the strongest human-designed
//! schemes, including router-assisted ones.
//!
//! ```text
//! cargo run --release -p remy-sim --example cellular [n_senders]
//! ```

use remy_sim::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let link = LinkSpec::Trace {
        schedule: std::sync::Arc::new(verizon_schedule()),
        name: "verizon-like LTE".to_string(),
    };
    println!(
        "Verizon-like LTE downlink (synthetic, avg {:.1} Mbps), n = {n}, RTT 50 ms",
        link.average_rate_mbps(1500)
    );

    let cfg = Workload {
        link,
        queue_capacity: 1000,
        n_senders: n,
        rtt: Ns::from_millis(50),
        traffic: TrafficSpec::fig4(),
        duration: Ns::from_secs(30),
        runs: 6,
        seed: 7,
    };

    let contenders = [
        Contender::remy("RemyCC d=0.1", remy::assets::delta01()),
        Contender::remy("RemyCC d=1", remy::assets::delta1()),
        Contender::baseline(Scheme::NewReno),
        Contender::baseline(Scheme::Cubic),
        Contender::baseline(Scheme::CubicSfqCodel),
        Contender::baseline(Scheme::Vegas),
    ];
    for c in &contenders {
        println!("{}", evaluate(c, &cfg).row());
    }
    println!("\nPaper finding: for n <= 4, RemyCCs stay on the efficient frontier even");
    println!("though the cellular link violates their design assumptions (Fig. 7).");
}
