//! Cellular "model mismatch" demo (paper §5.3, Figs. 7–9).
//!
//! RemyCCs were designed for smooth 10–20 Mbps links; here they run over a
//! synthetic LTE downlink whose rate swings between ~0 and 50 Mbps — far
//! outside the design range — against the strongest human-designed
//! schemes, including router-assisted ones.
//!
//! ```text
//! cargo run --release -p remy-sim --example cellular [n_senders]
//! ```

use remy_sim::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let avg = LinkRef::named_trace("verizon-like")
        .resolve()
        .expect("shipped trace")
        .average_rate_mbps(1500);
    println!("Verizon-like LTE downlink (synthetic, avg {avg:.1} Mbps), n = {n}, RTT 50 ms");

    let spec = ExperimentSpec::new(
        "cellular",
        "Verizon-like LTE",
        WorkloadSpec::uniform(
            LinkRef::named_trace("verizon-like"),
            1000,
            n,
            Ns::from_millis(50),
            TrafficSpec::fig4(),
        ),
        vec![
            ContenderSpec::new("remy:delta01"),
            ContenderSpec::new("remy:delta1"),
            ContenderSpec::new("newreno"),
            ContenderSpec::new("cubic"),
            ContenderSpec::new("cubic+sfqcodel"),
            ContenderSpec::new("vegas"),
        ],
        Budget {
            runs: 6,
            sim_secs: 30,
        },
        7,
    );
    let results = Experiment::new(spec).run().expect("spec is well-formed");
    for cell in &results.cells {
        println!("{}", cell.outcome.row());
    }
    println!("\nPaper finding: for n <= 4, RemyCCs stay on the efficient frontier even");
    println!("though the cellular link violates their design assumptions (Fig. 7).");
}
