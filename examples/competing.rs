//! Incremental deployment (paper §5.6): one RemyCC flow sharing a
//! DropTail bottleneck with one flow of Compound or Cubic.
//!
//! The RemyCC here is the "coexist" table, designed for RTTs far beyond
//! the propagation delay so a buffer-filling competitor cannot push it out
//! of its design range.
//!
//! ```text
//! cargo run --release -p remy-sim --example competing
//! ```

use remy_sim::prelude::*;
use std::sync::Arc;

/// Run `runs` head-to-head sims and return (remy mean tput, rival mean
/// tput) with std-devs, in Mbps.
fn head_to_head(
    rival: Scheme,
    traffic: TrafficSpec,
    runs: usize,
    secs: u64,
) -> ((f64, f64), (f64, f64)) {
    let table = remy::assets::coexist();
    let mut remy_t = Vec::new();
    let mut rival_t = Vec::new();
    for k in 0..runs {
        let scenario = Scenario {
            link: LinkSpec::constant(15.0),
            queue: QueueSpec::DropTail { capacity: 1000 },
            senders: vec![
                SenderConfig {
                    rtt: Ns::from_millis(150),
                    traffic: traffic.clone(),
                },
                SenderConfig {
                    rtt: Ns::from_millis(150),
                    traffic: traffic.clone(),
                },
            ],
            mss: 1500,
            duration: Ns::from_secs(secs),
            seed: 1000 + k as u64,
            record_deliveries: false,
            topology: None,
            churn: None,
        };
        let ccs: Vec<Box<dyn netsim::cc::CongestionControl>> = vec![
            Box::new(RemyCc::new(Arc::clone(&table)).with_name("RemyCC")),
            rival.build_cc(),
        ];
        let r = Simulator::new(&scenario, ccs, None).run();
        if r.flows[0].was_active() {
            remy_t.push(r.flows[0].throughput_mbps);
        }
        if r.flows[1].was_active() {
            rival_t.push(r.flows[1].throughput_mbps);
        }
    }
    (
        (
            netsim::stats::mean(&remy_t),
            netsim::stats::std_dev(&remy_t),
        ),
        (
            netsim::stats::mean(&rival_t),
            netsim::stats::std_dev(&rival_t),
        ),
    )
}

fn main() {
    let runs = 8;
    println!("15 Mbps DropTail bottleneck, RTT 150 ms, 1 RemyCC flow vs 1 rival flow\n");

    println!("vs Compound — empirical (Fig. 3) flow lengths, varying mean off time:");
    for off_ms in [200u64, 100, 10] {
        let traffic = TrafficSpec {
            on: OnSpec::empirical(),
            off_mean: Ns::from_millis(off_ms),
            start_on: false,
        };
        let ((rm, rs), (cm, cs)) = head_to_head(Scheme::Compound, traffic, runs, 60);
        println!(
            "  off {off_ms:>4} ms : RemyCC {rm:.2} ({rs:.2})  Compound {cm:.2} ({cs:.2}) Mbps"
        );
    }

    println!("\nvs Cubic — exponential flow sizes, 0.5 s mean off time:");
    for mean_bytes in [100_000.0, 1_000_000.0] {
        let traffic = TrafficSpec {
            on: OnSpec::ByBytes { mean_bytes },
            off_mean: Ns::from_millis(500),
            start_on: false,
        };
        let ((rm, rs), (cm, cs)) = head_to_head(Scheme::Cubic, traffic, runs, 60);
        println!(
            "  {:>4} kB    : RemyCC {rm:.2} ({rs:.2})  Cubic {cm:.2} ({cs:.2}) Mbps",
            mean_bytes as u64 / 1000
        );
    }

    println!("\nPaper finding (§5.6): RemyCC grabs spare bandwidth faster at low duty");
    println!("cycles; aggressive buffer-fillers win at high duty cycles, but closely.");
}
