//! Datacenter comparison (paper §5.5): DCTCP with ECN marking vs. a
//! RemyCC designed for `−1/throughput` over a plain DropTail queue.
//!
//! The paper's fabric is 10 Gbps / 4 ms / 64 senders; DESIGN.md documents
//! the 500 Mbps scaling used here (same queue-vs-BDP geometry, laptop-
//! scale runtime). Use `REMY_DC_MBPS=10000` to run at paper scale.
//!
//! ```text
//! cargo run --release -p remy-sim --example datacenter
//! ```

use remy_sim::prelude::*;

fn main() {
    let mbps: f64 = std::env::var("REMY_DC_MBPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500.0);
    let scale = mbps / 10_000.0;
    let n = 32;
    let transfer_bytes = 20e6 * scale; // paper: exp(20 MB) at 10 Gbps

    println!(
        "Datacenter: {mbps} Mbps, RTT 4 ms, n = {n}, exp({:.1} MB) transfers / exp(0.1 s) off\n",
        transfer_bytes / 1e6
    );

    // DCTCP's gateway marks at K packets; the paper's guidance is
    // K ≈ C·RTT/7 ≈ 0.6 BDP; use 65 (the common 10 GbE setting), scaled.
    let k = ((65.0 * scale).round() as usize).max(4);
    let spec = ExperimentSpec::new(
        "datacenter",
        "Datacenter fabric",
        WorkloadSpec::uniform(
            LinkRef::constant(mbps),
            1000,
            n,
            Ns::from_millis(4),
            TrafficSpec {
                on: OnSpec::ByBytes {
                    mean_bytes: transfer_bytes,
                },
                off_mean: Ns::from_millis(100),
                start_on: false,
            },
        ),
        vec![
            ContenderSpec::new(format!("dctcp:{k}")),
            ContenderSpec::labeled("remy:datacenter", "RemyCC (DropTail)"),
        ],
        Budget {
            runs: 4,
            sim_secs: 10,
        },
        99,
    );
    let results = Experiment::new(spec).run().expect("spec is well-formed");
    for cell in &results.cells {
        let out = &cell.outcome;
        println!(
            "{:<20} tput mean {:>8.2} med {:>8.2} Mbps   rtt mean {:>6.2} med {:>6.2} ms",
            out.label,
            netsim::stats::mean(&out.throughput_samples),
            out.median_throughput_mbps,
            netsim::stats::mean(&out.rtt_samples),
            out.median_rtt_ms,
        );
    }
    println!("\nPaper table (§5.5): RemyCC over DropTail achieves comparable throughput");
    println!("to DCTCP at lower variance, but higher per-packet latency (no ECN/AQM).");
}
