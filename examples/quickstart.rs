//! Quickstart: the headline comparison in thirty seconds.
//!
//! Runs a computer-generated congestion-control algorithm (the shipped
//! RemyCC trained with δ=1) against TCP NewReno and TCP Cubic on the
//! paper's Fig. 4 dumbbell — 15 Mbps bottleneck, 150 ms RTT, eight
//! senders flipping between 100 kB transfers and half-second pauses — and
//! prints per-sender median throughput and queueing delay.
//!
//! ```text
//! cargo run --release -p remy-sim --example quickstart
//! ```

use remy_sim::prelude::*;

fn main() {
    let cfg = Workload {
        link: LinkSpec::constant(15.0),
        queue_capacity: 1000,
        n_senders: 8,
        rtt: Ns::from_millis(150),
        traffic: TrafficSpec::fig4(),
        duration: Ns::from_secs(30),
        runs: 8,
        seed: 42,
    };

    println!("Dumbbell: 15 Mbps, RTT 150 ms, n = 8, exp(100 kB) transfers / exp(0.5 s) off");
    println!("{} runs x {}s per scheme\n", cfg.runs, cfg.duration.as_secs_f64());

    let contenders = [
        Contender::remy("RemyCC d=1", remy::assets::delta1()),
        Contender::baseline(Scheme::NewReno),
        Contender::baseline(Scheme::Cubic),
    ];
    for c in &contenders {
        let out = evaluate(c, &cfg);
        println!("{}", out.row());
    }
    println!("\nHigher throughput at lower queueing delay wins (paper Fig. 4).");
}
