//! Quickstart: the headline comparison in thirty seconds.
//!
//! Runs a computer-generated congestion-control algorithm (the shipped
//! RemyCC trained with δ=1) against TCP NewReno and TCP Cubic on the
//! paper's Fig. 4 dumbbell — 15 Mbps bottleneck, 150 ms RTT, eight
//! senders flipping between 100 kB transfers and half-second pauses — and
//! prints per-sender median throughput and queueing delay.
//!
//! Experiments are declarative values: the spec below serializes to JSON
//! (`spec.to_json()`), and the same comparison is drivable as
//! `remy-cli run <spec.json>`.
//!
//! ```text
//! cargo run --release -p remy-sim --example quickstart
//! ```

use remy_sim::prelude::*;

fn main() {
    let spec = ExperimentSpec::new(
        "quickstart",
        "Fig. 4 dumbbell",
        WorkloadSpec::uniform(
            LinkRef::constant(15.0),
            1000,
            8,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
        ),
        vec![
            ContenderSpec::new("remy:delta1"),
            ContenderSpec::new("newreno"),
            ContenderSpec::new("cubic"),
        ],
        Budget {
            runs: 8,
            sim_secs: 30,
        },
        42,
    );

    println!("Dumbbell: 15 Mbps, RTT 150 ms, n = 8, exp(100 kB) transfers / exp(0.5 s) off");
    println!(
        "{} runs x {}s per scheme\n",
        spec.budget.runs, spec.budget.sim_secs
    );

    let results = Experiment::new(spec).run().expect("spec is well-formed");
    for cell in &results.cells {
        println!("{}", cell.outcome.row());
    }
    println!("\nHigher throughput at lower queueing delay wins (paper Fig. 4).");
}
