//! Design a RemyCC offline, exactly as §4.3 of the paper describes, and
//! write the resulting rule table to `crates/core/assets/<name>.json`.
//!
//! ```text
//! cargo run --release -p remy-sim --example train_remycc -- <name> [wall_secs] [out_dir] \
//!     [--jobs N] [--steps N] [--continue]
//! ```
//!
//! `--jobs N` sets the evaluation worker count (default: `REMY_JOBS` or
//! all cores). Trained tables are byte-identical at any `--jobs` value.
//! `--steps N` replaces the wall-clock budget with a fixed number of
//! improvement steps, which makes the output fully deterministic.
//!
//! `<name>` selects the design-range model and objective:
//!
//! | name        | model (§5.1 / §5.5 / §5.6 / §5.7)        | objective        |
//! |-------------|-------------------------------------------|------------------|
//! | delta01     | general: 10–20 Mbps, 100–200 ms, n≤16    | log tput − 0.1 log delay |
//! | delta1      | general                                   | log tput − 1 log delay   |
//! | delta10     | general                                   | log tput − 10 log delay  |
//! | onex        | link known exactly (15 Mbps), n = 2       | δ = 1            |
//! | tenx        | link in 4.7–47 Mbps, n = 2                | δ = 1            |
//! | datacenter  | scaled datacenter (see DESIGN.md), n ≤ 32 | −1/throughput    |
//! | coexist     | RTT 100 ms – 2 s (buffer-filling rival)   | δ = 1            |
//!
//! The paper spent CPU-weeks per table; the default budget here is eight
//! minutes of wall clock. Longer budgets produce sharper tables — the
//! output is a drop-in replacement for the shipped assets.

use remy_sim::prelude::*;

/// Named training setups. Returns (model, objective, eval config).
fn setup(name: &str) -> Option<(NetworkModel, Objective, EvalConfig)> {
    let std_eval = EvalConfig {
        specimens: 4,
        sim_secs: 8.0,
    };
    Some(match name {
        "delta01" => (
            NetworkModel::general(),
            Objective::proportional(0.1),
            std_eval,
        ),
        "delta1" => (
            NetworkModel::general(),
            Objective::proportional(1.0),
            std_eval,
        ),
        "delta10" => (
            NetworkModel::general(),
            Objective::proportional(10.0),
            std_eval,
        ),
        "onex" => (
            NetworkModel::exact_link(),
            Objective::proportional(1.0),
            std_eval,
        ),
        "tenx" => (
            NetworkModel::tenx_link(),
            Objective::proportional(1.0),
            std_eval,
        ),
        "datacenter" => (
            // Scaled datacenter model (DESIGN.md): the paper's 10 Gbps / 4 ms
            // fabric is simulated at 500 Mbps with proportionally smaller
            // transfers so a laptop-scale trainer sees the same
            // queue-vs-BDP geometry.
            scaled_datacenter_model(),
            Objective::min_potential_delay(),
            EvalConfig {
                specimens: 4,
                sim_secs: 3.0,
            },
        ),
        "coexist" => (
            // §5.6: designed for RTTs well beyond the propagation delay so
            // a buffer-filling competitor cannot push the RemyCC out of its
            // design range. (Training sims are finite, so the upper end is
            // 2 s rather than the paper's 10 s.)
            NetworkModel {
                rtt_ms: (100.0, 2000.0),
                n_senders: (1, 2),
                ..NetworkModel::general()
            },
            Objective::proportional(1.0),
            EvalConfig {
                specimens: 4,
                sim_secs: 12.0,
            },
        ),
        _ => return None,
    })
}

/// The scaled datacenter design model (also used by the §5.5 harness).
fn scaled_datacenter_model() -> NetworkModel {
    NetworkModel {
        n_senders: (1, 32),
        link_mbps: (500.0, 500.0),
        rtt_ms: (4.0, 4.0),
        traffic: TrafficSpec {
            on: OnSpec::ByBytes { mean_bytes: 1e6 },
            off_mean: Ns::from_millis(100),
            start_on: false,
        },
        queue: QueueSpec::DropTail { capacity: 1000 },
        mss: 1500,
    }
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut steps: Option<usize> = None;
    let mut warm_start = false;
    let mut args = std::env::args().skip(1);
    fn require_number(flag: &str, v: Option<String>) -> usize {
        v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a number");
            std::process::exit(2);
        })
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--continue" => warm_start = true,
            "--jobs" => jobs = Some(require_number("--jobs", args.next())),
            s if s.starts_with("--jobs=") => {
                jobs = Some(require_number(
                    "--jobs",
                    Some(s["--jobs=".len()..].to_string()),
                ));
            }
            "--steps" => steps = Some(require_number("--steps", args.next())),
            s if s.starts_with("--steps=") => {
                steps = Some(require_number(
                    "--steps",
                    Some(s["--steps=".len()..].to_string()),
                ));
            }
            s if s.starts_with("--") => {
                eprintln!("unknown flag '{s}'");
                std::process::exit(2);
            }
            _ => positional.push(a),
        }
    }
    let name = positional.first().map(String::as_str).unwrap_or("delta1");
    // With a fixed step budget the wall clock is only a safety net.
    let wall_secs: f64 = positional
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(if steps.is_some() { 1e9 } else { 480.0 });
    let out_dir = positional
        .get(2)
        .cloned()
        .unwrap_or_else(|| "crates/core/assets".to_string());
    if let Some(n) = jobs {
        remy::evaluator::set_jobs(n);
    }

    let Some((model, objective, eval)) = setup(name) else {
        eprintln!(
            "unknown table '{name}'; choose one of: delta01 delta1 delta10 onex tenx datacenter coexist"
        );
        std::process::exit(2);
    };

    println!("== Remy design phase ==");
    println!("table     : {name}");
    println!("model     : {}", model.describe());
    println!("objective : {}", objective.label());
    match steps {
        Some(n) => println!(
            "budget    : {n} improvement steps, {} specimens x {} s sims",
            eval.specimens, eval.sim_secs
        ),
        None => println!(
            "budget    : {wall_secs:.0} s wall clock, {} specimens x {} s sims",
            eval.specimens, eval.sim_secs
        ),
    }
    println!("jobs      : {}", remy::evaluator::jobs());

    let remy = Remy::new(
        model,
        objective,
        TrainConfig {
            eval,
            wall_secs,
            max_steps: steps.unwrap_or(usize::MAX),
            max_rules: 128,
            seed: 2013,
        },
    );

    // Warm start: `--continue` resumes from the existing asset, so budget
    // can be added incrementally across sessions.
    let initial = if warm_start {
        let path = format!("{out_dir}/{name}.json");
        match std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| remy::whisker::WhiskerTree::from_json(&s).ok())
        {
            Some(t) if !t.provenance.contains("placeholder") => {
                println!("continuing from {path} ({} rules)", t.len());
                t
            }
            _ => remy::whisker::WhiskerTree::single_rule(),
        }
    } else {
        remy::whisker::WhiskerTree::single_rule()
    };

    let started = std::time::Instant::now();
    let table = remy.design_from(initial, |event| match event {
        TrainEvent::Epoch {
            epoch,
            rules,
            score,
        } => {
            println!(
                "[{:7.1}s] epoch {epoch}: {rules} rules, score {score:.3}",
                started.elapsed().as_secs_f64()
            );
        }
        TrainEvent::Improved { rule, from, to } => {
            println!(
                "[{:7.1}s]   rule {rule}: {from:.3} -> {to:.3}",
                started.elapsed().as_secs_f64()
            );
        }
        TrainEvent::Split { rule, rules } => {
            println!(
                "[{:7.1}s]   split rule {rule}: now {rules} rules",
                started.elapsed().as_secs_f64()
            );
        }
        TrainEvent::Done {
            rules,
            score,
            steps,
        } => {
            println!(
                "[{:7.1}s] done: {rules} rules, score {score:.3}, {steps} improvement steps",
                started.elapsed().as_secs_f64()
            );
        }
    });

    let path = format!("{out_dir}/{name}.json");
    std::fs::write(&path, table.to_json()).expect("write rule table");
    println!("wrote {path} ({} rules)", table.len());
}
