#!/usr/bin/env bash
# Bench-regression gate: run every criterion-shim bench with --save-json,
# then fail if any tracked mean regressed more than the tolerance vs the
# committed baseline.
#
# usage: scripts/bench_gate.sh [baseline.json] [current.json]
#
#   BENCH_GATE_TOLERANCE  allowed regression, percent (default 30)
#   BENCH_GATE_SKIP_RUN   set to 1 to compare an existing current.json
#                         instead of re-running `cargo bench`
#
# The JSON files are the flat `{"group/bench": mean_ns_per_iter, ...}`
# documents the criterion shim writes. Benchmarks present only in the
# current run (new benches) are reported but never fail the gate; update
# the baseline to start tracking them. Benchmarks missing from the current
# run fail the gate (a tracked bench disappeared).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${1:-BENCH_baseline.json}
CURRENT=${2:-target/bench.json}
TOL=${BENCH_GATE_TOLERANCE:-30}

if [ ! -f "$BASELINE" ]; then
    echo "bench_gate: baseline '$BASELINE' not found" >&2
    exit 2
fi

# The simulator benches honor NETSIM_SCHEDULER (wheel is the default,
# `heap` selects the binary-heap event queue); print which one this run
# used so saved numbers are attributable.
echo "bench_gate: event scheduler = ${NETSIM_SCHEDULER:-wheel (default)}"

if [ "${BENCH_GATE_SKIP_RUN:-0}" != "1" ]; then
    rm -f "$CURRENT"
    # Absolute path: cargo runs bench executables with CWD set to the
    # package directory, so a relative --save-json would land under
    # crates/bench/.
    cargo bench -p bench -- --save-json "$(pwd)/$CURRENT"
fi

if [ ! -f "$CURRENT" ]; then
    echo "bench_gate: current results '$CURRENT' not found" >&2
    exit 2
fi

# Normalize `  "name": 123.4,` lines into `name|123.4`.
normalize() {
    sed -n 's/^[[:space:]]*"\([^"]*\)":[[:space:]]*\([0-9.eE+-]*\),\{0,1\}$/\1|\2/p' "$1"
}

normalize "$BASELINE" > /tmp/bench_gate_base.$$
normalize "$CURRENT" > /tmp/bench_gate_cur.$$
trap 'rm -f /tmp/bench_gate_base.$$ /tmp/bench_gate_cur.$$' EXIT

# Plain POSIX awk (no gawk extensions): load the current results, then
# walk the baseline in its (sorted) file order.
awk -F'|' -v tol="$TOL" '
    BEGIN {
        printf "%-44s %14s %14s %9s\n", "benchmark", "baseline", "current", "delta"
        fail = 0
    }
    NR == FNR { cur[$1] = $2; next }
    {
        name = $1; baseval = $2; seen[name] = 1
        if (!(name in cur)) {
            printf "%-44s %12.1fns %14s %9s  TRACKED BENCH MISSING\n", name, baseval, "-", "-"
            fail = 1
            next
        }
        delta = (cur[name] - baseval) / baseval * 100.0
        flag = ""
        if (delta > tol) { flag = "  REGRESSION (>" tol "%)"; fail = 1 }
        printf "%-44s %12.1fns %12.1fns %+8.1f%%%s\n", name, baseval, cur[name], delta, flag
    }
    END {
        for (name in cur) {
            if (!(name in seen))
                printf "%-44s %14s %12.1fns %9s  (new, untracked)\n", name, "-", cur[name], "-"
        }
        if (fail) {
            print ""
            print "bench_gate: FAIL - a tracked mean regressed more than " tol "% (or disappeared)"
            exit 1
        }
        print ""
        print "bench_gate: OK - no tracked mean regressed more than " tol "%"
    }
' /tmp/bench_gate_cur.$$ /tmp/bench_gate_base.$$
