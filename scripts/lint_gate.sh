#!/usr/bin/env bash
# Determinism & safety gate: the whole workspace must scan clean under
# remy-lint (rules D1-D6, CONTRIBUTING.md "Determinism rules"), the gate
# itself must still *reject* bad code (the seeded fixtures), and the
# strict-invariants dynamic lane (shadow-heap scheduler checker + arena
# generation audit) must pass. The pinned toolchain is stable, so
# -Zsanitizer / Miri are unavailable; the cfg-gated strict lane is the
# substitute and runs here.
#
# usage: scripts/lint_gate.sh
#   REMY_LINT  override the remy-lint invocation (default: the release
#              binary, built here via cargo)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${REMY_LINT:-}" ]; then
    cargo build --release -q -p remy-lint
    REMY_LINT=target/release/remy-lint
fi

echo "lint_gate: scanning workspace..."
if ! $REMY_LINT --json > /tmp/lint_gate_out.$$ 2>&1; then
    echo "lint_gate: FAIL - remy-lint reported diagnostics:"
    cat /tmp/lint_gate_out.$$
    rm -f /tmp/lint_gate_out.$$
    exit 1
fi
rm -f /tmp/lint_gate_out.$$
echo "lint_gate: workspace is clean"

# Allow-report artifact: the inventory of every lint:allow in the tree
# (the PDES migration worklist). Nonzero exit means a bare justification
# or a directive naming a rule that no longer exists.
echo "lint_gate: allow-report (every directive justified, no stale ids)..."
mkdir -p target
if ! $REMY_LINT --allow-report --json > target/lint_allows.json; then
    echo "lint_gate: FAIL - unjustified or stale lint:allow directives:"
    $REMY_LINT --allow-report || true
    exit 1
fi
echo "lint_gate: allow inventory written to target/lint_allows.json"

# Effect analysis: the field-level read/write report over the state
# model must show zero unmodeled sim-scope mutable fields and zero stale
# model entries, and the global-write edge set must match the committed
# baseline exactly (the PDES-partitionability ratchet — new edges fail,
# burned-down edges demand a tightened baseline).
echo "lint_gate: effect analysis + global-write ratchet..."
if ! $REMY_LINT --effects --json --baseline lint/effects_baseline.json \
        > target/lint_effects.json; then
    echo "lint_gate: FAIL - effects gate (unmodeled state or a new"
    echo "           global-write edge; see stderr above)"
    exit 1
fi
echo "lint_gate: effects report written to target/lint_effects.json"
echo "lint_gate: PDES readiness report..."
$REMY_LINT --pdes-report

# Negative control: every seeded-violation fixture, scanned under a
# virtual in-scope path, must FAIL individually. A gate that stops
# rejecting bad code is worse than no gate — and checking per fixture
# means one loud fixture cannot mask a rule that went silent.
echo "lint_gate: negative control (each seeded fixture must fail)..."
for fixture in crates/lint/tests/fixtures/bad_*.rs; do
    if $REMY_LINT --scope-as crates/netsim/src "$fixture" > /dev/null 2>&1; then
        echo "lint_gate: FAIL - $fixture scanned clean;"
        echo "           the analyzer is no longer rejecting bad code"
        exit 1
    fi
done
echo "lint_gate: all fixtures still rejected"

# The unmodeled-field control sits outside the bad_* glob on purpose
# (it exercises the e3 model-completeness path, not a seeded token
# violation): a brand-new struct written by sim code must be rejected
# until it is classified in effects::STATE_MODEL.
echo "lint_gate: unmodeled-state control..."
if $REMY_LINT --scope-as crates/netsim/src \
        crates/lint/tests/fixtures/unmodeled_field.rs > /dev/null 2>&1; then
    echo "lint_gate: FAIL - unmodeled_field.rs scanned clean;"
    echo "           e3 no longer enforces state-model completeness"
    exit 1
fi
echo "lint_gate: unmodeled-state control still rejected"

# Dynamic lane: every EventQueue pop checked against a shadow reference
# heap, every arena alloc/free audited for generation parity. Stable
# toolchain => no AddressSanitizer/ThreadSanitizer/Miri; this cfg-gated
# checker is the strict lane instead.
echo "lint_gate: strict-invariants lane (sanitizers unavailable on stable)..."
cargo test -q -p netsim --features strict-invariants
cargo test -q -p remy-sim --features netsim/strict-invariants

echo "lint_gate: OK"
