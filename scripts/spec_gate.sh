#!/usr/bin/env bash
# Golden-spec drift gate: regenerate the JSON spec of *every* registry
# experiment with `remy-cli spec <name>` and diff it against the committed
# copy under specs/. Any drift (format change, new default, renamed field)
# fails the build until the golden is intentionally regenerated:
#
#     remy-cli spec <name> > specs/<name>.json
#
# usage: scripts/spec_gate.sh
#   REMY_CLI  override the remy-cli invocation (default: the release
#             binary via cargo run)
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=${REMY_CLI:-"cargo run --release -q -p remy-sim --bin remy-cli --"}

fail=0
names=$($CLI list-experiments --names)
[ -n "$names" ] || { echo "spec_gate: no experiments listed" >&2; exit 2; }
for name in $names; do
    if [ ! -f "specs/$name.json" ]; then
        echo "spec_gate: specs/$name.json is missing (remy-cli spec $name > specs/$name.json)"
        fail=1
        continue
    fi
    if ! $CLI spec "$name" | diff -u "specs/$name.json" - > /tmp/spec_gate_diff.$$ 2>&1; then
        echo "spec_gate: specs/$name.json drifted:"
        cat /tmp/spec_gate_diff.$$
        fail=1
    fi
done
rm -f /tmp/spec_gate_diff.$$

if [ "$fail" -ne 0 ]; then
    echo "spec_gate: FAIL - golden specs out of date"
    exit 1
fi
echo "spec_gate: OK - all $(echo "$names" | wc -w) golden specs match the registry"
