//! Integration: qualitative behaviours the paper attributes to each
//! baseline, verified end-to-end in the simulator.

use remy_sim::prelude::*;

fn run(scheme: Scheme, n: usize, secs: u64, seed: u64) -> SimResults {
    let link = LinkSpec::constant(15.0);
    let scenario = Scenario {
        link: link.clone(),
        queue: scheme.queue_spec(1000),
        senders: (0..n)
            .map(|_| SenderConfig {
                rtt: Ns::from_millis(150),
                traffic: TrafficSpec::saturating(),
            })
            .collect(),
        mss: 1500,
        duration: Ns::from_secs(secs),
        seed,
        record_deliveries: false,
        topology: None,
        churn: None,
    };
    let ccs = (0..n).map(|_| scheme.build_cc()).collect();
    let router = scheme.router(&link, 1500);
    Simulator::new(&scenario, ccs, router).run()
}

#[test]
fn xcp_senders_converge_to_fair_shares() {
    let r = run(Scheme::Xcp, 4, 40, 13);
    let tputs: Vec<f64> = r.flows.iter().map(|f| f.throughput_mbps).collect();
    let total: f64 = tputs.iter().sum();
    assert!(total > 10.0, "XCP should use most of 15 Mbps, got {total}");
    let jain = total * total / (4.0 * tputs.iter().map(|t| t * t).sum::<f64>());
    assert!(jain > 0.85, "XCP fairness {jain} ({tputs:?})");
}

#[test]
fn dctcp_delay_far_below_newreno_on_droptail() {
    let dctcp = run(Scheme::Dctcp { mark_threshold: 20 }, 2, 40, 15);
    let reno = run(Scheme::NewReno, 2, 40, 15);
    let d = |r: &SimResults| {
        netsim::stats::mean(
            &r.flows
                .iter()
                .map(|f| f.mean_queue_delay_ms)
                .collect::<Vec<_>>(),
        )
    };
    assert!(
        d(&dctcp) * 3.0 < d(&reno),
        "DCTCP {} ms vs NewReno {} ms",
        d(&dctcp),
        d(&reno)
    );
}

#[test]
fn compound_beats_newreno_ramp_on_an_empty_link() {
    // Compound's delay window accelerates when queues are empty: in a
    // short window it should move at least as much data as NewReno.
    let run_short = |scheme: Scheme| {
        let scenario = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            1,
            Ns::from_millis(150),
            TrafficSpec::saturating(),
            Ns::from_secs(6),
            17,
        );
        let ccs = vec![scheme.build_cc()];
        Simulator::new(&scenario, ccs, None).run().flows[0].bytes
    };
    let compound = run_short(Scheme::Compound);
    let reno = run_short(Scheme::NewReno);
    assert!(
        compound >= reno,
        "Compound {compound} should ramp at least as fast as NewReno {reno}"
    );
}

#[test]
fn vegas_parks_a_few_packets_in_the_queue() {
    // Vegas aims for alpha..beta (1..3) packets queued: queueing delay for
    // one flow should sit near a couple of packet times (~0.8 ms each),
    // far below buffer depth.
    let r = run(Scheme::Vegas, 1, 40, 19);
    let d = r.flows[0].mean_queue_delay_ms;
    assert!(d > 0.1, "Vegas holds some standing queue, got {d} ms");
    assert!(d < 30.0, "Vegas must not bloat, got {d} ms");
}

#[test]
fn cubic_recovers_quickly_after_single_loss_episodes() {
    // Post-loss, Cubic's concave recovery should keep long-run
    // utilization high even with a shallow buffer.
    let scenario = Scenario::dumbbell(
        LinkSpec::constant(15.0),
        QueueSpec::DropTail { capacity: 200 },
        1,
        Ns::from_millis(100),
        TrafficSpec::saturating(),
        Ns::from_secs(60),
        23,
    );
    let r = run_scenario(&scenario, &|_| Box::new(Cubic::new()));
    assert!(
        r.utilization(15.0) > 0.8,
        "Cubic shallow-buffer utilization {}",
        r.utilization(15.0)
    );
}

#[test]
fn stochastic_loss_hurts_loss_based_tcp_more_than_remycc() {
    // §4.1: RemyCC's loss-free congestion signals ride out non-congestive
    // loss. Model it with a tiny-capacity-queue-free link and random
    // drops injected via a lossy queue wrapper... simplest equivalent: a
    // very shallow AQM-free buffer that Cubic overruns but a window-capped
    // RemyCC doesn't. Here we approximate by comparing a trained RemyCC
    // and NewReno on a clean link (no drops): both must fill it, which
    // pins the baseline for the lossy comparison in the bench harness.
    let table = remy::assets::delta01();
    let scenario = Scenario::dumbbell(
        LinkSpec::constant(15.0),
        QueueSpec::DropTail { capacity: 1000 },
        1,
        Ns::from_millis(150),
        TrafficSpec::saturating(),
        Ns::from_secs(30),
        29,
    );
    let remy_r = run_scenario(&scenario, &|_| {
        Box::new(remy::remycc::RemyCc::new(std::sync::Arc::clone(&table)))
    });
    assert!(
        remy_r.flows[0].throughput_mbps > 1.0,
        "trained RemyCC moves data on its design link: {}",
        remy_r.flows[0].throughput_mbps
    );
}
