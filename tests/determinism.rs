//! Integration: bit-for-bit reproducibility across the whole stack.
//! Everything the optimizer does relies on this (common random numbers).

use remy_sim::prelude::*;
use std::sync::{Arc, Mutex};

/// Serializes the tests that sweep the process-global jobs knob, so each
/// really runs at the thread counts it claims to cover.
static JOBS_KNOB: Mutex<()> = Mutex::new(());

fn fingerprint(r: &SimResults) -> (u64, u64, Vec<u64>) {
    (
        r.packets_forwarded,
        r.queue_drops,
        r.flows.iter().map(|f| f.bytes).collect(),
    )
}

#[test]
fn identical_runs_for_every_scheme() {
    for scheme in Scheme::standard_suite() {
        let link = LinkSpec::constant(15.0);
        let scenario = Scenario {
            link: link.clone(),
            queue: scheme.queue_spec(1000),
            senders: (0..3)
                .map(|_| SenderConfig {
                    rtt: Ns::from_millis(150),
                    traffic: TrafficSpec::fig4(),
                })
                .collect(),
            mss: 1500,
            duration: Ns::from_secs(12),
            seed: 1234,
            record_deliveries: false,
            topology: None,
            churn: None,
        };
        let go = || {
            let ccs = (0..3).map(|_| scheme.build_cc()).collect();
            let router = scheme.router(&link, 1500);
            Simulator::new(&scenario, ccs, router).run()
        };
        assert_eq!(
            fingerprint(&go()),
            fingerprint(&go()),
            "{} is nondeterministic",
            scheme.label()
        );
    }
}

#[test]
fn identical_runs_for_remycc_on_trace_links() {
    let table = remy::assets::delta1();
    let scenario = Scenario::dumbbell(
        LinkSpec::Trace {
            schedule: Arc::new(verizon_schedule()),
            name: "v".into(),
        },
        QueueSpec::DropTail { capacity: 1000 },
        4,
        Ns::from_millis(50),
        TrafficSpec::fig4(),
        Ns::from_secs(12),
        77,
    );
    let go = || run_scenario(&scenario, &|_| Box::new(RemyCc::new(Arc::clone(&table))));
    assert_eq!(fingerprint(&go()), fingerprint(&go()));
}

#[test]
fn seeds_actually_matter() {
    let scenario = |seed| {
        Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            4,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(12),
            seed,
        )
    };
    let a = run_scenario(&scenario(1), &|_| Box::new(NewReno::new()));
    let b = run_scenario(&scenario(2), &|_| Box::new(NewReno::new()));
    assert_ne!(
        fingerprint(&a).2,
        fingerprint(&b).2,
        "different seeds must change traffic draws"
    );
}

#[test]
fn evaluator_common_random_numbers_hold_across_tables() {
    // Two different tables must see exactly the same specimen scenarios.
    let evaluator = Evaluator::new(
        NetworkModel::general(),
        Objective::proportional(1.0),
        EvalConfig {
            specimens: 3,
            sim_secs: 3.0,
        },
    );
    let s1 = evaluator.specimens(42);
    let s2 = evaluator.specimens(42);
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.n(), b.n());
        assert_eq!(a.senders[0].rtt, b.senders[0].rtt);
    }
}

#[test]
fn training_with_step_budget_is_reproducible() {
    let cfg = TrainConfig {
        eval: EvalConfig {
            specimens: 2,
            sim_secs: 3.0,
        },
        wall_secs: 600.0,
        max_steps: 2,
        max_rules: 8,
        seed: 9,
    };
    let t1 = Remy::new(
        NetworkModel::exact_link(),
        Objective::proportional(1.0),
        cfg,
    )
    .design(|_| {});
    let t2 = Remy::new(
        NetworkModel::exact_link(),
        Objective::proportional(1.0),
        cfg,
    )
    .design(|_| {});
    assert_eq!(t1.to_json(), t2.to_json());
}

#[test]
fn training_is_thread_count_invariant() {
    // The hard constraint of the parallel evaluation engine: the trained
    // table is byte-identical at any worker count, because every parallel
    // map collects positionally and reductions run in input order.
    let _knob = JOBS_KNOB.lock().unwrap();
    let cfg = TrainConfig {
        eval: EvalConfig {
            specimens: 3,
            sim_secs: 3.0,
        },
        wall_secs: 600.0,
        max_steps: 2,
        max_rules: 16,
        seed: 21,
    };
    let train = || {
        Remy::new(NetworkModel::general(), Objective::proportional(1.0), cfg)
            .design(|_| {})
            .to_json()
    };
    let mut outputs = Vec::new();
    for jobs in [1usize, 2, 4] {
        remy::evaluator::set_jobs(jobs);
        outputs.push((jobs, train()));
    }
    remy::evaluator::set_jobs(0); // restore automatic selection
    let (_, reference) = &outputs[0];
    for (jobs, json) in &outputs[1..] {
        assert_eq!(
            json, reference,
            "table trained with --jobs {jobs} differs from --jobs 1"
        );
    }
}

#[test]
fn evaluation_scores_are_thread_count_invariant() {
    let _knob = JOBS_KNOB.lock().unwrap();
    let evaluator = Evaluator::new(
        NetworkModel::general(),
        Objective::proportional(1.0),
        EvalConfig {
            specimens: 5,
            sim_secs: 3.0,
        },
    );
    let specimens = evaluator.specimens(3);
    let table = remy::assets::delta1();
    let mut scores = Vec::new();
    let mut usages = Vec::new();
    for jobs in [1usize, 2, 4] {
        remy::evaluator::set_jobs(jobs);
        let (score, usage) = evaluator.evaluate(&table, &specimens);
        scores.push(score);
        usages.push(usage.total());
    }
    remy::evaluator::set_jobs(0);
    assert!(
        scores.windows(2).all(|w| w[0] == w[1]),
        "scores varied with thread count: {scores:?}"
    );
    assert!(
        usages.windows(2).all(|w| w[0] == w[1]),
        "usage totals varied with thread count: {usages:?}"
    );
}
