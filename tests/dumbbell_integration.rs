//! Integration: whole-system behaviour on the paper's dumbbell topology,
//! crossing crate boundaries (netsim + congestion + remy-sim harness).

use remy_sim::prelude::*;

fn saturating(n: usize, secs: u64, scheme: Scheme, seed: u64) -> SimResults {
    let link = LinkSpec::constant(15.0);
    let scenario = Scenario {
        link: link.clone(),
        queue: scheme.queue_spec(1000),
        senders: (0..n)
            .map(|_| SenderConfig {
                rtt: Ns::from_millis(150),
                traffic: TrafficSpec::saturating(),
            })
            .collect(),
        mss: 1500,
        duration: Ns::from_secs(secs),
        seed,
        record_deliveries: false,
        topology: None,
        churn: None,
    };
    let ccs = (0..n).map(|_| scheme.build_cc()).collect();
    let router = scheme.router(&link, 1500);
    Simulator::new(&scenario, ccs, router).run()
}

#[test]
fn every_scheme_moves_data_on_the_dumbbell() {
    for scheme in Scheme::standard_suite() {
        let r = saturating(2, 20, scheme, 3);
        let total: u64 = r.flows.iter().map(|f| f.bytes).sum();
        assert!(
            total > 1_000_000,
            "{} moved only {total} bytes",
            scheme.label()
        );
    }
}

#[test]
fn conservation_no_receiver_gets_unforwarded_data() {
    for scheme in [Scheme::NewReno, Scheme::Cubic, Scheme::CubicSfqCodel] {
        let r = saturating(4, 20, scheme, 5);
        let delivered: u64 = r.flows.iter().map(|f| f.packets_delivered).sum();
        let dups: u64 = r.flows.iter().map(|f| f.duplicate_deliveries).sum();
        assert!(
            delivered + dups <= r.packets_forwarded,
            "{}: delivered {delivered} + dups {dups} > forwarded {}",
            scheme.label(),
            r.packets_forwarded
        );
    }
}

#[test]
fn delay_ordering_matches_the_papers_spectrum() {
    // §5.2: "from most delay-conscious (Vegas) to most throughput-
    // conscious (Cubic)".
    let vegas = saturating(2, 40, Scheme::Vegas, 7);
    let cubic = saturating(2, 40, Scheme::Cubic, 7);
    let d = |r: &SimResults| {
        netsim::stats::mean(
            &r.flows
                .iter()
                .map(|f| f.mean_queue_delay_ms)
                .collect::<Vec<_>>(),
        )
    };
    assert!(
        d(&vegas) * 4.0 < d(&cubic),
        "Vegas {} must be far below Cubic {}",
        d(&vegas),
        d(&cubic)
    );
}

#[test]
fn sfqcodel_isolates_a_light_flow_from_a_buffer_filler() {
    // One Cubic buffer-filler + one light on/off flow. Under sfqCoDel the
    // light flow's queueing delay must stay far below the DropTail case.
    let build = |queue: QueueSpec, seed: u64| {
        let scenario = Scenario {
            link: LinkSpec::constant(15.0),
            queue,
            senders: vec![
                SenderConfig {
                    rtt: Ns::from_millis(150),
                    traffic: TrafficSpec::saturating(),
                },
                SenderConfig {
                    rtt: Ns::from_millis(150),
                    traffic: TrafficSpec::fig4(),
                },
            ],
            mss: 1500,
            duration: Ns::from_secs(40),
            seed,
            record_deliveries: false,
            topology: None,
            churn: None,
        };
        let ccs: Vec<Box<dyn netsim::cc::CongestionControl>> =
            vec![Box::new(Cubic::new()), Box::new(Cubic::new())];
        Simulator::new(&scenario, ccs, None).run()
    };
    let droptail = build(QueueSpec::DropTail { capacity: 1000 }, 9);
    let sfq = build(
        QueueSpec::SfqCodel {
            capacity: 1000,
            buckets: 64,
        },
        9,
    );
    let light_dt = droptail.flows[1].mean_queue_delay_ms;
    let light_sfq = sfq.flows[1].mean_queue_delay_ms;
    assert!(
        light_sfq < light_dt / 4.0,
        "sfqCoDel should isolate the light flow: {light_sfq} ms vs {light_dt} ms"
    );
}

#[test]
fn harness_medians_are_sane_for_fig4_workload() {
    let spec = ExperimentSpec::new(
        "fig4_sanity",
        "Fig. 4 sanity",
        WorkloadSpec::uniform(
            LinkRef::constant(15.0),
            1000,
            8,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
        ),
        vec![ContenderSpec::new("newreno")],
        Budget {
            runs: 3,
            sim_secs: 15,
        },
        21,
    );
    let results = Experiment::new(spec).run().expect("well-formed spec");
    let out = &results.cells[0].outcome;
    // 8 senders with ~17% duty cycle on 15 Mbps: per-sender throughput
    // must land between "starved" and "whole link".
    assert!(
        out.median_throughput_mbps > 0.05 && out.median_throughput_mbps < 15.0,
        "median {}",
        out.median_throughput_mbps
    );
    assert!(
        out.throughput_samples.len() >= 8,
        "pooled per-sender samples"
    );
}

#[test]
fn bigger_buffers_mean_more_delay_for_loss_based_tcp() {
    let run = |cap: usize| {
        let scenario = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: cap },
            1,
            Ns::from_millis(150),
            TrafficSpec::saturating(),
            Ns::from_secs(30),
            11,
        );
        run_scenario(&scenario, &|_| Box::new(NewReno::new()))
    };
    let small = run(100);
    let big = run(2000);
    assert!(
        big.flows[0].mean_queue_delay_ms > small.flows[0].mean_queue_delay_ms * 2.0,
        "bufferbloat: {} ms (2000p) vs {} ms (100p)",
        big.flows[0].mean_queue_delay_ms,
        small.flows[0].mean_queue_delay_ms
    );
}
