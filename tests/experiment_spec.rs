//! Integration: the declarative experiment layer — golden JSON round
//! trips, the named registry, and the `remy-cli run` entry point.

use remy_sim::experiments;
use remy_sim::prelude::*;
use std::process::Command;

/// The checked-in golden spec for Fig. 4. `remy-cli spec fig4` must keep
/// producing exactly this document — spec-format drift fails the build
/// (CI additionally diffs the regenerated file against the repo copy).
const FIG4_GOLDEN: &str = include_str!("../specs/fig4.json");

#[test]
fn fig4_spec_matches_checked_in_golden() {
    let spec = experiments::by_name("fig4")
        .expect("fig4 registered")
        .spec(Budget::default_fixed());
    assert_eq!(
        spec.to_json(),
        FIG4_GOLDEN,
        "specs/fig4.json is stale — regenerate with `remy-cli spec fig4`"
    );
}

#[test]
fn golden_spec_parses_and_round_trips() {
    let spec = ExperimentSpec::from_json(FIG4_GOLDEN).expect("golden parses");
    assert_eq!(spec.name, "fig4");
    assert_eq!(spec.workload.n(), 8);
    assert_eq!(spec.contenders.len(), 9);
    assert_eq!(spec.to_json(), FIG4_GOLDEN, "parse ∘ print is identity");
}

#[test]
fn every_registered_spec_round_trips_through_json() {
    let tiny = Budget {
        runs: 2,
        sim_secs: 3,
    };
    for entry in experiments::all() {
        let spec = entry.spec(tiny);
        let text = spec.to_json();
        let back =
            ExperimentSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(back, spec, "{} round trip", entry.name);
        assert_eq!(back.to_json(), text, "{} stable serialization", entry.name);
    }
}

#[test]
fn scenario_round_trips_every_queue_and_traffic_variant() {
    // Scenario-level serialization is covered variant-by-variant in
    // netsim's unit tests; here, cross-crate: a scenario produced by an
    // expanded spec (trace link included) survives text JSON.
    let spec = experiments::by_name("fig7")
        .expect("fig7 registered")
        .spec(Budget {
            runs: 1,
            sim_secs: 3,
        });
    let cells = spec.expand().expect("expand");
    for cell in &cells {
        let sc = &cell.scenarios[0];
        let back = Scenario::from_json(&sc.to_json()).expect("parse");
        assert_eq!(back.to_json(), sc.to_json());
        assert_eq!(back.seed, sc.seed);
        assert_eq!(back.queue, sc.queue);
    }
}

#[test]
fn user_authored_spec_executes_end_to_end() {
    // Hand-written JSON (different field order, no optional fields, human
    // number formats) must parse, round-trip, and run.
    let text = r#"{
        "name": "user_demo",
        "title": "user-authored dumbbell",
        "seed": 7,
        "budget": {"runs": 2, "sim_secs": 4},
        "workload": {
            "link": {"kind": "constant", "rate_mbps": 12},
            "queue_capacity": 500,
            "senders": {"n": 3, "rtt_ns": 100000000,
                        "traffic": {"on": {"kind": "by_bytes", "mean_bytes": 5e4},
                                    "off_mean_ns": 250000000, "start_on": false}},
            "record_deliveries": false
        },
        "contenders": ["newreno", "remy:delta1"],
        "sweeps": [{"axis": "n_senders", "values": [2, 4]}]
    }"#;
    let spec = ExperimentSpec::from_json(text).expect("parse");
    let reparsed = ExperimentSpec::from_json(&spec.to_json()).expect("reparse");
    assert_eq!(reparsed, spec, "from_json ∘ to_json is lossless");
    let results = Experiment::new(spec).run().expect("runs");
    assert_eq!(results.cells.len(), 4, "2 sweep points x 2 contenders");
    for cell in &results.cells {
        assert!(
            cell.outcome.median_throughput_mbps > 0.0,
            "{} produced no throughput",
            cell.label
        );
    }
}

#[test]
fn remy_cli_runs_fig4_at_tiny_budget() {
    let out = Command::new(env!("CARGO_BIN_EXE_remy-cli"))
        .args(["run", "fig4", "--runs", "1", "--secs", "3"])
        .output()
        .expect("spawn remy-cli");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "remy-cli run fig4 failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("Fig. 4"), "report printed: {stdout}");
    assert!(stdout.contains("RemyCC d=1"), "contender rows: {stdout}");
    assert!(stdout.contains("(csv:"), "CSV written: {stdout}");
}

#[test]
fn remy_cli_lists_experiments_and_dumps_specs() {
    let list = Command::new(env!("CARGO_BIN_EXE_remy-cli"))
        .arg("list-experiments")
        .output()
        .expect("spawn");
    assert!(list.status.success());
    let text = String::from_utf8_lossy(&list.stdout);
    for entry in experiments::all() {
        assert!(text.contains(entry.name), "{} listed", entry.name);
    }

    let spec = Command::new(env!("CARGO_BIN_EXE_remy-cli"))
        .args(["spec", "fig4"])
        .env_remove("REMY_RUNS")
        .env_remove("REMY_SIM_SECS")
        .output()
        .expect("spawn");
    assert!(spec.status.success());
    assert_eq!(
        String::from_utf8_lossy(&spec.stdout),
        FIG4_GOLDEN,
        "`remy-cli spec fig4` reproduces the checked-in golden"
    );
}

#[test]
fn spec_file_run_keeps_custom_presentation() {
    // A dumped registry spec must dispatch back through its entry's
    // custom runner: running fig3's spec produces the flow-length CDF,
    // not a generic throughput table from the documentation workload.
    let dir = std::env::temp_dir().join("remy_spec_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig3.json");
    let spec = experiments::by_name("fig3").unwrap().spec(Budget {
        runs: 5000,
        sim_secs: 3,
    });
    std::fs::write(&path, spec.to_json()).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_remy-cli"))
        .args(["run", path.to_str().unwrap(), "--out", "csv"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("bytes,empirical_cdf,closed_form_cdf"),
        "fig3 spec file must produce the CDF, got: {stdout}"
    );
}

#[test]
fn remy_cli_rejects_unknown_experiment_with_candidates_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_remy-cli"))
        .args(["run", "no_such_experiment_xyz"])
        .output()
        .expect("spawn remy-cli");
    assert!(
        !out.status.success(),
        "unknown experiment names must exit nonzero"
    );
    assert_eq!(out.status.code(), Some(2), "conventional usage-error code");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no_such_experiment_xyz"),
        "names the offender: {stderr}"
    );
    assert!(
        stderr.contains("known experiments"),
        "offers candidates: {stderr}"
    );
    for name in ["fig4", "parking_lot3", "incast16", "reverse_path"] {
        assert!(stderr.contains(name), "candidate list has {name}: {stderr}");
    }
    assert!(
        out.stdout.is_empty(),
        "the candidate list belongs on stderr, not stdout"
    );
}

#[test]
fn remy_cli_lists_bare_names_for_scripts() {
    let out = Command::new(env!("CARGO_BIN_EXE_remy-cli"))
        .args(["list-experiments", "--names"])
        .output()
        .expect("spawn remy-cli");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let names: Vec<&str> = stdout.lines().collect();
    assert_eq!(names.len(), experiments::all().len());
    for (line, entry) in names.iter().zip(experiments::all()) {
        assert_eq!(*line, entry.name, "bare names, registry order");
    }
}

#[test]
fn every_registry_entry_has_a_committed_golden_spec() {
    // The CI spec gate regenerates and diffs these; here we pin that the
    // files exist and parse back to the registry's own spec.
    let repo_specs = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    for entry in experiments::all() {
        let path = repo_specs.join(format!("{}.json", entry.name));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} has no committed golden spec ({}): {e}",
                entry.name,
                path.display()
            )
        });
        let golden = ExperimentSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: golden does not parse: {e}", entry.name));
        let fresh = entry.spec(Budget::default_fixed());
        assert_eq!(
            golden, fresh,
            "{}: golden spec drifted — regenerate with `remy-cli spec {}`",
            entry.name, entry.name
        );
        assert_eq!(fresh.to_json(), text, "{}: byte-stable golden", entry.name);
    }
}

#[test]
fn remy_cli_runs_a_topology_experiment_end_to_end() {
    let out = Command::new(env!("CARGO_BIN_EXE_remy-cli"))
        .args(["run", "reverse_path", "--runs", "1", "--secs", "3"])
        .output()
        .expect("spawn remy-cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Reverse path"), "report printed: {stdout}");
    assert!(stdout.contains("east tput"), "direction table: {stdout}");
}

#[test]
fn remy_cli_runs_a_spec_file() {
    let dir = std::env::temp_dir().join("remy_spec_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mini.json");
    let mut spec = ExperimentSpec::from_json(FIG4_GOLDEN).unwrap();
    spec.contenders.truncate(2); // keep the smoke run quick
    std::fs::write(&path, spec.to_json()).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_remy-cli"))
        .args([
            "run",
            path.to_str().unwrap(),
            "--runs",
            "1",
            "--secs",
            "3",
            "--out",
            "csv",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("scheme,median_tput_mbps"),
        "--out csv prints CSV: {stdout}"
    );
    assert_eq!(stdout.lines().count(), 3, "header + 2 contender rows");
}
