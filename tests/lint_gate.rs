//! Workspace self-cleanliness gate: `remy-lint` must report zero
//! diagnostics on the tree this test ships with.
//!
//! This is the in-process twin of `scripts/lint_gate.sh` — running the
//! analyzer as a library call means `cargo test` alone (no shell, no
//! built binary) already refuses a tree that reintroduces a HashMap in
//! the sim path, an undocumented `unsafe`, or a bare `lint:allow`
//! without justification. The seeded-violation coverage (each rule
//! firing with the right spans) lives in `crates/lint/tests/fixtures.rs`.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let diags = remy_lint::scan_workspace(&root).expect("workspace scan succeeds");
    assert!(
        diags.is_empty(),
        "remy-lint found {} diagnostic(s) in the workspace:\n{}",
        diags.len(),
        remy_lint::render_human(&diags)
    );
}

#[test]
fn every_allow_directive_in_tree_is_justified() {
    // `scan_workspace` already folds bare allows into the diagnostic
    // stream (rule `lint-allow`), but assert the property by name so a
    // regression in that folding is caught even if the tree is otherwise
    // clean.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let diags = remy_lint::scan_workspace(&root).expect("workspace scan succeeds");
    let bare: Vec<_> = diags.iter().filter(|d| d.rule == "lint-allow").collect();
    assert!(
        bare.is_empty(),
        "unjustified lint:allow directives: {bare:#?}"
    );
}

#[test]
fn allow_report_lists_every_directive_with_justification() {
    // The `--allow-report` CI artifact is the PDES migration worklist:
    // every directive must carry a justification and name a rule that
    // still exists. An empty report would mean the collector broke —
    // the tree carries justified allows by design.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let entries = remy_lint::allow_report(&root).expect("allow report builds");
    assert!(
        entries.len() >= 30,
        "expected the tree's full allow inventory, found {}",
        entries.len()
    );
    for e in &entries {
        assert!(e.justified, "bare allow escaped the gate: {e:?}");
        assert!(e.known_rule, "stale rule id escaped the gate: {e:?}");
        assert!(
            e.justification.len() >= 8,
            "thin justification escaped: {e:?}"
        );
    }
    // The report must cover every rule family we rely on allows for.
    // (The s3 inventory was burned down when `WhiskerTree` dropped its
    // `OnceLock` cache for an eager flat handle; the E family took over
    // as the machine-checked PDES worklist.)
    for family in ["p1-", "p2-", "r2-", "e1-", "e2-"] {
        assert!(
            entries.iter().any(|e| e.rule.starts_with(family)),
            "no {family}* allows in the report — collector lost a family"
        );
    }
}

#[test]
fn effects_model_covers_every_sim_scope_mutable_field() {
    // The e3 acceptance bar, asserted in-process: every netsim struct
    // field mutated by sim-reachable code is classified in
    // `effects::STATE_MODEL`, and no model entry points at a field that
    // no longer exists.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let analysis = remy_lint::analyze_workspace(&root).expect("analysis builds");
    let report = remy_lint::effects::report(&analysis);
    assert!(
        report.unmodeled.is_empty(),
        "unmodeled sim-scope fields: {:?}",
        report
            .unmodeled
            .iter()
            .map(|u| format!("{}.{} ({}:{})", u.ty, u.field, u.decl_file, u.decl_line))
            .collect::<Vec<_>>()
    );
    assert!(report.stale.is_empty(), "stale entries: {:?}", report.stale);
    // The effect extraction itself must keep covering the full root set.
    assert_eq!(report.roots.len(), 13, "a sim root fell out of the report");
    assert_eq!(report.handlers.len(), 9, "a handler fell out of the report");
}

#[test]
fn global_write_edges_match_the_committed_baseline() {
    // The ratchet, asserted in-process and bidirectionally: a NEW edge
    // means a handler now reaches global state (fix it or justify and
    // re-baseline with `remy-lint --effects --write-baseline`); a
    // REMOVED edge means the worklist shrank and the committed baseline
    // must be tightened to lock in the progress.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let analysis = remy_lint::analyze_workspace(&root).expect("analysis builds");
    let report = remy_lint::effects::report(&analysis);
    let committed = std::fs::read_to_string(root.join("lint/effects_baseline.json"))
        .expect("lint/effects_baseline.json is committed");
    let baseline = remy_lint::effects::parse_baseline(&committed);
    let (new, removed) = remy_lint::effects::ratchet_diff(&report, &baseline);
    assert!(new.is_empty(), "NEW global-write edges: {new:#?}");
    assert!(
        removed.is_empty(),
        "edges burned down — tighten lint/effects_baseline.json: {removed:#?}"
    );
}

#[test]
fn callgraph_scope_is_a_superset_of_the_old_path_scope() {
    // remy-lint v1 scoped sim rules purely by path: every file under a
    // sim crate's `src/`. v2 scopes the P/R/S families by call-graph
    // reachability from the simulation entry points. This pins the
    // migration invariant — every file the old path scope covered still
    // defines at least one sim-reachable function — modulo the pinned
    // exceptions below: module-declaration files with no function bodies
    // of their own, and host-side trace-file I/O nothing in a simulation
    // root calls. Growing this list is a deliberate act, not drift.
    const KNOWN_UNREACHABLE: &[&str] = &[
        "crates/core/src/lib.rs",
        "crates/netsim/src/lib.rs",
        "crates/remy-sim/src/lib.rs",
        "crates/traces/src/io.rs",
        "crates/traces/src/lib.rs",
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let analysis = remy_lint::analyze_workspace(&root).expect("analysis builds");
    let covered: std::collections::BTreeSet<String> = analysis
        .reachable_fns()
        .into_iter()
        .map(|(f, _, _)| f)
        .collect();
    for f in &analysis.files {
        let p = f.path.as_str();
        if !remy_lint::rules::prs_scope(p) {
            continue;
        }
        if KNOWN_UNREACHABLE.contains(&p) {
            assert!(
                !covered.contains(p),
                "{p} is pinned unreachable but now has reachable functions \
                 — remove it from KNOWN_UNREACHABLE"
            );
            continue;
        }
        assert!(
            covered.contains(p),
            "{p} was in the old path scope but the call graph reaches \
             nothing in it — a root or edge kind regressed"
        );
    }
}

#[test]
fn hot_path_functions_stay_sim_reachable() {
    // A curated set of functions that must remain visible to the P/R/S
    // families; losing any of these means the call graph silently
    // stopped covering a whole subsystem.
    const MUST_REACH: &[(&str, &str)] = &[
        ("crates/netsim/src/sim.rs", "Simulator::on_ack_arrive"),
        ("crates/netsim/src/sched.rs", "TimingWheel::pop"),
        ("crates/netsim/src/transport.rs", "Transport::update_rtt"),
        ("crates/netsim/src/stats.rs", "P2Quantile::observe"),
        ("crates/netsim/src/flow.rs", "FlowTable::respawn"),
        ("crates/netsim/src/rng.rs", "SimRng::fork"),
        ("crates/core/src/remycc.rs", "RemyCc::on_ack"),
        ("crates/core/src/whisker.rs", "WhiskerTree::flat"),
        ("crates/core/src/evaluator.rs", "Evaluator::simulate_cell"),
        ("crates/core/src/optimizer.rs", "Remy::design"),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let analysis = remy_lint::analyze_workspace(&root).expect("analysis builds");
    let reachable = analysis.reachable_fns();
    for (file, name) in MUST_REACH {
        assert!(
            reachable.iter().any(|(f, n, _)| f == file && n == name),
            "{file}: {name} is no longer sim-reachable"
        );
    }
}
