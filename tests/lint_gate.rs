//! Workspace self-cleanliness gate: `remy-lint` must report zero
//! diagnostics on the tree this test ships with.
//!
//! This is the in-process twin of `scripts/lint_gate.sh` — running the
//! analyzer as a library call means `cargo test` alone (no shell, no
//! built binary) already refuses a tree that reintroduces a HashMap in
//! the sim path, an undocumented `unsafe`, or a bare `lint:allow`
//! without justification. The seeded-violation coverage (each rule
//! firing with the right spans) lives in `crates/lint/tests/fixtures.rs`.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let diags = remy_lint::scan_workspace(&root).expect("workspace scan succeeds");
    assert!(
        diags.is_empty(),
        "remy-lint found {} diagnostic(s) in the workspace:\n{}",
        diags.len(),
        remy_lint::render_human(&diags)
    );
}

#[test]
fn every_allow_directive_in_tree_is_justified() {
    // `scan_workspace` already folds bare allows into the diagnostic
    // stream (rule `lint-allow`), but assert the property by name so a
    // regression in that folding is caught even if the tree is otherwise
    // clean.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let diags = remy_lint::scan_workspace(&root).expect("workspace scan succeeds");
    let bare: Vec<_> = diags.iter().filter(|d| d.rule == "lint-allow").collect();
    assert!(
        bare.is_empty(),
        "unjustified lint:allow directives: {bare:#?}"
    );
}
