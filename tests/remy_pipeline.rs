//! Integration: the complete Remy pipeline — design a table with a tiny
//! budget, serialize it, reload it, and run it in the simulator.

use remy_sim::prelude::*;
use std::sync::Arc;

#[test]
fn design_serialize_reload_run() {
    // 1. Design with a deterministic micro-budget.
    let remy = Remy::new(
        NetworkModel::general(),
        Objective::proportional(1.0),
        TrainConfig {
            eval: EvalConfig {
                specimens: 2,
                sim_secs: 4.0,
            },
            wall_secs: 60.0,
            max_steps: 2,
            max_rules: 16,
            seed: 5,
        },
    );
    let table = remy.design(|_| {});
    // 2. Serialize and reload.
    let json = table.to_json();
    let reloaded = WhiskerTree::from_json(&json).expect("round trip");
    assert_eq!(reloaded.len(), table.len());
    // 3. Run it on a dumbbell.
    let tree = Arc::new(reloaded);
    let scenario = Scenario::dumbbell(
        LinkSpec::constant(15.0),
        QueueSpec::DropTail { capacity: 1000 },
        2,
        Ns::from_millis(150),
        TrafficSpec::saturating(),
        Ns::from_secs(15),
        2,
    );
    let r = run_scenario(&scenario, &|_| Box::new(RemyCc::new(Arc::clone(&tree))));
    assert!(r.flows[0].bytes > 100_000, "trained table must move data");
}

#[test]
fn optimizer_beats_a_crippled_starting_point() {
    // Evaluate the shipped (trained) delta1 table against the naive
    // single-rule default on design-range specimens: training must not
    // have made things worse.
    let evaluator = Evaluator::new(
        NetworkModel::general(),
        Objective::proportional(1.0),
        EvalConfig {
            specimens: 4,
            sim_secs: 10.0,
        },
    );
    let specimens = evaluator.specimens(77);
    let trained = remy::assets::delta1();
    let naive = Arc::new(WhiskerTree::single_rule());
    let trained_score = evaluator.score(&trained, &specimens);
    let naive_score = evaluator.score(&naive, &specimens);
    assert!(
        trained_score >= naive_score,
        "trained {trained_score} must be >= naive {naive_score}"
    );
}

#[test]
fn shipped_tables_run_on_their_design_scenarios() {
    for (name, table) in [
        ("delta01", remy::assets::delta01()),
        ("delta1", remy::assets::delta1()),
        ("delta10", remy::assets::delta10()),
        ("coexist", remy::assets::coexist()),
    ] {
        let scenario = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            4,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(20),
            8,
        );
        let r = run_scenario(&scenario, &|_| Box::new(RemyCc::new(Arc::clone(&table))));
        let total: u64 = r.flows.iter().map(|f| f.bytes).sum();
        assert!(total > 100_000, "{name}: moved only {total} bytes");
    }
}

#[test]
fn remycc_converges_quickly_after_competitor_departs() {
    // Fig. 6's dynamic: with a competitor gone, the survivor's delivery
    // rate must rise substantially within a couple of seconds.
    let table = remy::assets::delta1();
    if table.provenance.contains("placeholder") {
        // The asset hasn't been trained yet (bootstrap build); the naive
        // single-rule table has no delay response to measure.
        eprintln!("skipping: delta1 asset is an untrained placeholder");
        return;
    }
    let mut scenario = Scenario::dumbbell(
        LinkSpec::constant(15.0),
        QueueSpec::DropTail { capacity: 1000 },
        2,
        Ns::from_millis(150),
        TrafficSpec::saturating(),
        Ns::from_secs(20),
        6,
    )
    .with_delivery_log();
    scenario.senders[1].traffic = TrafficSpec {
        on: OnSpec::ByTimeFixed {
            duration: Ns::from_secs(10),
        },
        off_mean: Ns::from_secs(10_000),
        start_on: true,
    };
    let r = run_scenario(&scenario, &|_| Box::new(RemyCc::new(Arc::clone(&table))));
    let rate = |from_s: u64, to_s: u64| {
        r.deliveries
            .iter()
            .filter(|d| d.flow == 0 && d.at >= Ns::from_secs(from_s) && d.at < Ns::from_secs(to_s))
            .count() as f64
            / (to_s - from_s) as f64
    };
    let before = rate(7, 10);
    let after = rate(12, 15);
    // The paper's fully-trained tables double the rate within ~1 RTT
    // (Fig. 6). Laptop-budget tables learn a coarser pacing floor, so we
    // require a clear speed-up rather than a full doubling; the fig6
    // harness reports the measured ratio (see EXPERIMENTS.md).
    assert!(
        after > before * 1.1,
        "survivor should speed up: {before:.0} -> {after:.0} pkt/s"
    );
}

#[test]
fn usage_statistics_flow_through_evaluation() {
    let evaluator = Evaluator::new(
        NetworkModel::exact_link(),
        Objective::proportional(1.0),
        EvalConfig {
            specimens: 2,
            sim_secs: 5.0,
        },
    );
    let tree = Arc::new(WhiskerTree::single_rule());
    let specimens = evaluator.specimens(3);
    let (_, usage) = evaluator.evaluate(&tree, &specimens);
    assert!(usage.total() > 100, "ACK-driven lookups must register");
    assert!(usage.median_memory(0).is_some());
}
