//! Equivalence suite, pinning two engine contracts bit-for-bit:
//!
//! 1. **Topology**: a 1-hop `Topology` must reproduce the legacy
//!    single-bottleneck engine *byte-identically* — same seeds in, same
//!    `SimResults` out, bit-for-bit on every float — across queue
//!    disciplines and congestion-control schemes. This pins the topology
//!    engine's single-hop fast path to the behavior every figure of the
//!    paper was validated against.
//! 2. **Scheduler**: the timing-wheel and binary-heap event queues must
//!    produce identical `SimResults` *and identical per-event delivery
//!    logs* (event times) for every cell of the same suite and for the
//!    multi-hop topology experiments — the engines share one
//!    `(time, insertion id)` ordering contract, so swapping the scheduler
//!    must not move a single event.

use netsim::sched::SchedulerKind;
use remy_sim::prelude::*;

/// Exact, bitwise comparison of two simulation results.
fn assert_results_identical(a: &SimResults, b: &SimResults, what: &str) {
    assert_eq!(a.queue_drops, b.queue_drops, "{what}: drops");
    assert_eq!(
        a.packets_forwarded, b.packets_forwarded,
        "{what}: forwarded"
    );
    assert_eq!(a.flows.len(), b.flows.len(), "{what}: flow count");
    assert_eq!(
        a.deliveries.len(),
        b.deliveries.len(),
        "{what}: delivery count"
    );
    for (i, (da, db)) in a.deliveries.iter().zip(&b.deliveries).enumerate() {
        assert_eq!(
            (da.at, da.flow, da.seq),
            (db.at, db.flow, db.seq),
            "{what}: delivery {i}"
        );
    }
    for (i, (fa, fb)) in a.flows.iter().zip(&b.flows).enumerate() {
        assert_eq!(fa.bytes, fb.bytes, "{what}: flow {i} bytes");
        assert_eq!(
            fa.packets_delivered, fb.packets_delivered,
            "{what}: flow {i} packets"
        );
        assert_eq!(
            fa.duplicate_deliveries, fb.duplicate_deliveries,
            "{what}: flow {i} duplicates"
        );
        assert_eq!(fa.n_intervals, fb.n_intervals, "{what}: flow {i} intervals");
        for (field, va, vb) in [
            ("throughput", fa.throughput_mbps, fb.throughput_mbps),
            ("on_secs", fa.on_secs, fb.on_secs),
            (
                "queue_delay",
                fa.mean_queue_delay_ms,
                fb.mean_queue_delay_ms,
            ),
            ("rtt", fa.mean_rtt_ms, fb.mean_rtt_ms),
        ] {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{what}: flow {i} {field} ({va} vs {vb})"
            );
        }
    }
}

fn legacy_scenario(queue: QueueSpec, seed: u64) -> Scenario {
    Scenario::dumbbell(
        LinkSpec::constant(15.0),
        queue,
        4,
        Ns::from_millis(150),
        TrafficSpec::fig4(),
        Ns::from_secs(15),
        seed,
    )
}

fn run_with(contender: &Contender, scenario: &Scenario, kind: SchedulerKind) -> SimResults {
    let ccs: Vec<Box<dyn CongestionControl>> =
        (0..scenario.n()).map(|_| contender.build_cc()).collect();
    let router = contender.router(&scenario.link, scenario.mss);
    let n_hops = scenario.topology.as_ref().map_or(1, |t| t.n_hops());
    let mut routers: Vec<Option<Box<dyn netsim::router::RouterHook>>> =
        (0..n_hops).map(|_| None).collect();
    routers[0] = router;
    Simulator::with_scheduler(scenario, ccs, routers, kind).run()
}

/// The paper's discipline × scheme matrix, as (queue, contender) cells.
fn matrix() -> Vec<(QueueSpec, &'static str)> {
    let queues = [
        QueueSpec::DropTail { capacity: 1000 },
        QueueSpec::Codel { capacity: 300 },
        QueueSpec::SfqCodel {
            capacity: 1000,
            buckets: 64,
        },
    ];
    let contenders = ["newreno", "cubic", "remy:delta1"];
    let mut cells = Vec::new();
    for q in &queues {
        for c in contenders {
            cells.push((q.clone(), c));
        }
    }
    cells
}

#[test]
fn one_hop_topology_reproduces_the_legacy_engine_bit_for_bit() {
    for (qi, (queue, name)) in matrix().into_iter().enumerate() {
        let contender = ContenderSpec::new(name).build().expect("contender");
        let legacy = legacy_scenario(queue.clone(), 7_000 + qi as u64);
        let topo = legacy.clone().with_topology(Topology::single_bottleneck(
            legacy.link.clone(),
            legacy.queue.clone(),
            legacy.n(),
        ));
        assert!(topo.topology.is_some());
        let a = run_with(&contender, &legacy, SchedulerKind::Wheel);
        let b = run_with(&contender, &topo, SchedulerKind::Wheel);
        assert!(
            a.flows.iter().any(|f| f.bytes > 0),
            "{name}/{queue:?}: the comparison must exercise real traffic"
        );
        assert_results_identical(&a, &b, &format!("{name} over {queue:?}"));
    }
}

#[test]
fn wheel_and_heap_schedulers_agree_across_the_full_matrix() {
    // Every discipline × scheme cell, with the delivery log on so the
    // comparison covers per-event times, not just summaries. The engine
    // assigns tie-break ids in insertion order identically under both
    // schedulers (pinned directly by the scheduler property suite in
    // `crates/netsim/tests/props.rs`); identical delivery logs here are
    // the end-to-end corollary.
    for (qi, (queue, name)) in matrix().into_iter().enumerate() {
        let contender = ContenderSpec::new(name).build().expect("contender");
        let mut scenario = legacy_scenario(queue.clone(), 9_100 + qi as u64);
        scenario.record_deliveries = true;
        let heap = run_with(&contender, &scenario, SchedulerKind::Heap);
        let wheel = run_with(&contender, &scenario, SchedulerKind::Wheel);
        assert!(
            !wheel.deliveries.is_empty(),
            "{name}/{queue:?}: the comparison must see deliveries"
        );
        assert_results_identical(
            &heap,
            &wheel,
            &format!("heap vs wheel: {name} over {queue:?}"),
        );
    }
}

#[test]
fn wheel_and_heap_schedulers_agree_on_topology_experiments() {
    // The registered multi-hop experiments (parking lot, incast, reverse
    // path, plus the two graph-topology experiments), cell by cell,
    // scheduler vs scheduler.
    for exp in [
        "parking_lot3",
        "incast16",
        "reverse_path",
        "failover_chain",
        "fattree_k4_crosstraffic",
    ] {
        let spec = remy_sim::experiments::by_name(exp)
            .expect("registered")
            .spec(Budget {
                runs: 1,
                sim_secs: 4,
            });
        let cells = spec.expand().expect("expands");
        for cell in &cells {
            for (si, scenario) in cell.scenarios.iter().enumerate() {
                let mut scenario = scenario.clone();
                scenario.record_deliveries = true;
                let heap = run_with(&cell.contender, &scenario, SchedulerKind::Heap);
                let wheel = run_with(&cell.contender, &scenario, SchedulerKind::Wheel);
                assert_results_identical(
                    &heap,
                    &wheel,
                    &format!("{exp}: {} run {si}", cell.contender.label()),
                );
            }
        }
    }
}

#[test]
fn one_hop_topology_survives_json_and_still_matches() {
    // Serialize the topology scenario to JSON, parse it back, and the
    // parsed copy must still match the legacy engine exactly.
    let contender = ContenderSpec::new("newreno").build().unwrap();
    let legacy = legacy_scenario(QueueSpec::DropTail { capacity: 1000 }, 99);
    let topo = legacy.clone().with_topology(Topology::single_bottleneck(
        legacy.link.clone(),
        legacy.queue.clone(),
        legacy.n(),
    ));
    let reparsed = Scenario::from_json(&topo.to_json()).expect("parse");
    let a = run_with(&contender, &legacy, SchedulerKind::Wheel);
    let b = run_with(&contender, &reparsed, SchedulerKind::Wheel);
    assert_results_identical(&a, &b, "newreno via JSON round trip");
}

#[test]
fn one_hop_topology_through_the_spec_layer_matches_legacy_cells() {
    // The same equivalence, end to end through ExperimentSpec: a workload
    // with an explicit 1-hop TopologySpec produces the same outcomes as
    // the plain dumbbell workload.
    let plain = ExperimentSpec::new(
        "equiv_plain",
        "equivalence",
        WorkloadSpec::uniform(
            LinkRef::constant(15.0),
            1000,
            3,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
        ),
        vec![ContenderSpec::new("newreno"), ContenderSpec::new("cubic")],
        Budget {
            runs: 2,
            sim_secs: 8,
        },
        4141,
    );
    let mut topo = plain.clone();
    topo.workload = topo.workload.clone().with_topology(TopologySpec::flow_hops(
        vec![HopRef::new(LinkRef::constant(15.0), 1000)],
        (0..3).map(|_| FlowPath::through(vec![0])).collect(),
    ));
    let a = Experiment::new(plain).run().expect("plain runs");
    let b = Experiment::new(topo).run().expect("topology runs");
    assert_eq!(a.cells.len(), b.cells.len());
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.label, cb.label);
        assert_eq!(
            ca.outcome.throughput_samples, cb.outcome.throughput_samples,
            "{}: throughput samples identical",
            ca.label
        );
        assert_eq!(ca.outcome.delay_samples, cb.outcome.delay_samples);
        assert_eq!(ca.outcome.rtt_samples, cb.outcome.rtt_samples);
    }
}

#[test]
fn multi_hop_results_are_deterministic_across_runs() {
    // The topology engine keeps the engine-wide determinism contract.
    let spec = remy_sim::experiments::by_name("parking_lot3")
        .expect("registered")
        .spec(Budget {
            runs: 2,
            sim_secs: 5,
        });
    let a = Experiment::new(spec.clone()).run().expect("first run");
    let b = Experiment::new(spec).run().expect("second run");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.outcome.throughput_samples, cb.outcome.throughput_samples);
        assert_eq!(ca.outcome.delay_samples, cb.outcome.delay_samples);
    }
}
