//! Integration: trace-driven (cellular) links end to end.

use remy_sim::prelude::*;
use std::sync::Arc;

#[test]
fn delivery_rate_never_exceeds_trace_budget() {
    // A greedy sender cannot receive more packets than the schedule has
    // delivery slots.
    let schedule = LteModel::verizon_like().generate(3, Ns::from_secs(30));
    let slots_in_20s = {
        let mut t = Ns::ZERO;
        let mut n = 0u64;
        loop {
            t = schedule.next_after(t);
            if t >= Ns::from_secs(20) {
                break n;
            }
            n += 1;
        }
    };
    let scenario = Scenario::dumbbell(
        LinkSpec::Trace {
            schedule: Arc::new(schedule),
            name: "v".into(),
        },
        QueueSpec::DropTail { capacity: 1000 },
        1,
        Ns::from_millis(50),
        TrafficSpec::saturating(),
        Ns::from_secs(20),
        4,
    );
    let r = run_scenario(&scenario, &|_| Box::new(FixedWindow::new(600.0)));
    assert!(
        r.packets_forwarded <= slots_in_20s,
        "forwarded {} > slots {}",
        r.packets_forwarded,
        slots_in_20s
    );
    // And a big window should keep the lossy, varying link mostly busy.
    assert!(
        r.packets_forwarded as f64 > slots_in_20s as f64 * 0.9,
        "greedy sender should use ≥90% of slots: {} / {}",
        r.packets_forwarded,
        slots_in_20s
    );
}

#[test]
fn all_schemes_survive_the_cellular_link() {
    let spec = ExperimentSpec::new(
        "cellular_survival",
        "Verizon-like LTE survival",
        WorkloadSpec::uniform(
            LinkRef::named_trace("verizon-like"),
            1000,
            4,
            Ns::from_millis(50),
            TrafficSpec::fig4(),
        ),
        vec![
            ContenderSpec::new("newreno"),
            ContenderSpec::new("vegas"),
            ContenderSpec::new("cubic"),
            ContenderSpec::new("compound"),
            ContenderSpec::new("cubic+sfqcodel"),
            ContenderSpec::new("xcp"),
            ContenderSpec::new("remy:delta1"),
        ],
        Budget {
            runs: 1,
            sim_secs: 15,
        },
        31,
    );
    let results = Experiment::new(spec).run().expect("well-formed spec");
    for cell in &results.cells {
        assert!(
            cell.outcome.median_throughput_mbps > 0.01,
            "{} starved on the trace link: {}",
            cell.label,
            cell.outcome.median_throughput_mbps
        );
    }
}

#[test]
fn trace_io_round_trip_preserves_sim_results() {
    let schedule = LteModel::att_like().generate(9, Ns::from_secs(10));
    let text = traces::io::to_text(&schedule);
    let reloaded = traces::io::from_text(&text).expect("parse");
    let run_with = |s: netsim::link::DeliverySchedule| {
        let scenario = Scenario::dumbbell(
            LinkSpec::Trace {
                schedule: Arc::new(s),
                name: "t".into(),
            },
            QueueSpec::DropTail { capacity: 1000 },
            1,
            Ns::from_millis(50),
            TrafficSpec::saturating(),
            Ns::from_secs(8),
            5,
        );
        run_scenario(&scenario, &|_| Box::new(FixedWindow::new(200.0)))
    };
    let a = run_with(schedule);
    let b = run_with(reloaded);
    assert_eq!(a.packets_forwarded, b.packets_forwarded);
    assert_eq!(a.flows[0].bytes, b.flows[0].bytes);
}

#[test]
fn outage_dips_show_up_as_rtt_spikes() {
    // During outages the queue drains slowly, so a greedy sender's max
    // observed RTT must far exceed its propagation RTT.
    let schedule = LteModel::verizon_like().generate(13, Ns::from_secs(60));
    let scenario = Scenario::dumbbell(
        LinkSpec::Trace {
            schedule: Arc::new(schedule),
            name: "v".into(),
        },
        QueueSpec::DropTail { capacity: 1000 },
        1,
        Ns::from_millis(50),
        TrafficSpec::saturating(),
        Ns::from_secs(40),
        6,
    );
    let r = run_scenario(&scenario, &|_| Box::new(congestion::Cubic::new()));
    assert!(
        r.flows[0].mean_rtt_ms > 100.0,
        "bufferbloat through outages should inflate mean RTT, got {} ms",
        r.flows[0].mean_rtt_ms
    );
}
